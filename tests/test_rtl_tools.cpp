// Tests for the RTL tooling added on top of the core reproduction: the
// word-level simulator (cross-checked against a bit-accurate model of the
// same design), the word-level optimizer, graph export formats, the
// additional generator families, scale-free fitting and critical paths.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/export.hpp"
#include "graph/validity.hpp"
#include "rtl/builder.hpp"
#include "rtl/generators.hpp"
#include "rtl/verilog.hpp"
#include "rtl/simulator.hpp"
#include "rtl/wordopt.hpp"
#include "sta/critical_path.hpp"
#include "stats/scalefree.hpp"
#include "synth/synthesizer.hpp"
#include "util/rng.hpp"

namespace syn {
namespace {

using graph::Graph;
using graph::NodeType;
using rtl::Builder;

TEST(Simulator, CounterCountsAndWraps) {
  rtl::Simulator sim(rtl::make_counter(4, "cnt"));
  // inputs in id order: en, load, d.
  std::vector<std::uint64_t> last;
  for (int cycle = 0; cycle < 20; ++cycle) {
    last = sim.step({1, 0, 0});
  }
  // After 20 enabled cycles the counter shows the *previous* cycle's
  // latched value: counting starts one cycle late, so expect 19 mod 16.
  EXPECT_EQ(last[0] % 16, (20 - 1) % 16);
}

TEST(Simulator, CounterLoadPath) {
  rtl::Simulator sim(rtl::make_counter(8, "cnt"));
  sim.step({1, 1, 0x5a});  // request load
  const auto out = sim.step({0, 0, 0});  // latched now
  EXPECT_EQ(out[0], 0x5au);
}

TEST(Simulator, AluComputesSelectedOp) {
  // make_alu inputs in id order: a_in, c, op, acc_mode.
  rtl::Simulator sim(rtl::make_alu(8, "alu"));
  sim.step({7, 3, 0, 0});   // op 0 with s2=0,s1=0,s0=0 -> mux tree
  const auto out = sim.step({7, 3, 0, 0});
  // op=0: s0=0 -> m0 = sub? m0 = mux(s0, sum, sub) -> sub = 7-3 = 4;
  // m3 = mux(s1=0, m0, m1) -> m1 = mux(s0=0, and, or)=or? m3 picks ELSE
  // branch when s1=0 -> m1. Decode precisely: result = mux(s2=0, m3, m4)
  // -> m4 (else). m4 = mux(s1=0 -> else m0) = sub = 4.
  EXPECT_EQ(out[0], 4u);
}

TEST(Simulator, RejectsInvalidDesigns) {
  Graph g("bad");
  g.add_node(NodeType::kNot, 1);
  EXPECT_THROW(rtl::Simulator sim(g), std::invalid_argument);
}

TEST(Simulator, FifoTracksOccupancy) {
  rtl::Simulator sim(rtl::make_fifo_ctrl(3, "fifo"));
  // inputs: push, pop. outputs: full, empty, wptr, rptr, count, strobe.
  auto out = sim.step({0, 0});
  for (int i = 0; i < 4; ++i) out = sim.step({1, 0});
  out = sim.step({0, 0});
  EXPECT_EQ(out[4], 4u);  // count == pushes
  for (int i = 0; i < 2; ++i) out = sim.step({0, 1});
  out = sim.step({0, 0});
  EXPECT_EQ(out[4], 2u);
}

TEST(WordOpt, FoldsConstantExpressions) {
  Builder b("fold");
  const auto x = b.input(8);
  const auto k1 = b.constant(8, 3);
  const auto k2 = b.constant(8, 4);
  const auto sum = b.add(k1, k2);       // folds to 7
  b.output(b.add(x, sum));
  const auto result = rtl::word_optimize(b.take());
  EXPECT_TRUE(graph::is_valid(result.graph));
  EXPECT_GE(result.folded_constants, 1u);
  // The folded node is a const 7.
  bool has_const7 = false;
  for (graph::NodeId i = 0; i < result.graph.num_nodes(); ++i) {
    has_const7 = has_const7 || (result.graph.type(i) == NodeType::kConst &&
                                result.graph.param(i) == 7);
  }
  EXPECT_TRUE(has_const7);
}

TEST(WordOpt, SweepsDeadLogic) {
  Builder b("dead");
  const auto x = b.input(8);
  b.output(b.not_(x));
  const auto dead_reg = b.reg(8);
  b.drive_reg(dead_reg, b.mul(x, x));
  const Graph g = b.take();
  const auto result = rtl::word_optimize(g);
  EXPECT_LT(result.graph.num_nodes(), g.num_nodes());
  EXPECT_GT(result.swept_nodes, 0u);
  EXPECT_EQ(result.graph.nodes_of_type(NodeType::kReg).size(), 0u);
}

TEST(WordOpt, PreservesBehaviourOnCorpusDesigns) {
  for (int idx : {0, 7, 14}) {
    auto corpus = rtl::make_corpus({.seed = 9});
    const Graph original = std::move(corpus[static_cast<std::size_t>(idx)].graph);
    const auto optimized = rtl::word_optimize(original);
    ASSERT_TRUE(graph::is_valid(optimized.graph))
        << graph::validate(optimized.graph).to_string();
    rtl::Simulator sim_a(original);
    rtl::Simulator sim_b(optimized.graph);
    ASSERT_EQ(sim_a.num_inputs(), sim_b.num_inputs());
    ASSERT_EQ(sim_a.num_outputs(), sim_b.num_outputs());
    util::Rng rng(42 + static_cast<std::uint64_t>(idx));
    for (int cycle = 0; cycle < 16; ++cycle) {
      std::vector<std::uint64_t> in(sim_a.num_inputs());
      for (auto& v : in) v = rng.next();
      EXPECT_EQ(sim_a.step(in), sim_b.step(in))
          << original.name() << " cycle " << cycle;
    }
  }
}

TEST(WordOpt, IdentityRewritesApply) {
  Builder b("ident");
  const auto x = b.input(8);
  const auto zero = b.constant(8, 0);
  b.output(b.add(x, zero));   // x + 0 == x
  b.output(b.or_(x, zero));   // x | 0 == x
  const auto result = rtl::word_optimize(b.take());
  EXPECT_GE(result.identity_rewrites, 2u);
  EXPECT_TRUE(graph::is_valid(result.graph));
}

TEST(Export, JsonRoundTripIsExact) {
  const Graph g = rtl::make_uart_tx(8);
  const Graph back = graph::from_json(graph::to_json(g));
  EXPECT_EQ(g, back);
  EXPECT_EQ(back.name(), g.name());
}

TEST(Export, JsonRejectsMalformedInput) {
  EXPECT_THROW(graph::from_json("{}"), std::runtime_error);
  EXPECT_THROW(graph::from_json("{\"name\":\"x\",\"nodes\":[[99,1,0]],"
                                "\"edges\":[]}"),
               std::runtime_error);
}

TEST(Export, DotContainsAllNodesAndEdges) {
  const Graph g = rtl::make_counter(4);
  const std::string dot = graph::to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (graph::NodeId i = 0; i < g.num_nodes(); ++i) {
    EXPECT_NE(dot.find("n" + std::to_string(i) + " ["), std::string::npos);
  }
}

TEST(Export, EdgeListHasOneLinePerEdge) {
  const Graph g = rtl::make_counter(4);
  const std::string list = graph::to_edge_list(g);
  std::size_t lines = 0;
  for (char c : list) lines += c == '\n';
  EXPECT_EQ(lines, g.num_edges());
}

class NewGeneratorTest : public ::testing::TestWithParam<int> {};

TEST_P(NewGeneratorTest, ValidAndSimulatable) {
  Graph g;
  switch (GetParam()) {
    case 0: g = rtl::make_gray_counter(6); break;
    case 1: g = rtl::make_johnson_counter(8); break;
    case 2: g = rtl::make_priority_encoder(6); break;
    case 3: g = rtl::make_barrel_shifter(8); break;
    case 4: g = rtl::make_hamming_encoder(3); break;
    default: g = rtl::make_debouncer(4); break;
  }
  const auto report = graph::validate(g);
  ASSERT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(g, rtl::from_verilog(rtl::to_verilog(g)));
  rtl::Simulator sim(g);
  util::Rng rng(7);
  for (int cycle = 0; cycle < 8; ++cycle) {
    std::vector<std::uint64_t> in(sim.num_inputs());
    for (auto& v : in) v = rng.next();
    EXPECT_EQ(sim.step(in).size(), sim.num_outputs());
  }
  const auto stats = synth::synthesize_stats(g);
  EXPECT_GE(stats.scpr(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(AllNew, NewGeneratorTest, ::testing::Range(0, 6));

TEST(NewGenerators, GrayCodeChangesOneBitPerStep) {
  rtl::Simulator sim(rtl::make_gray_counter(5));
  std::uint64_t prev = sim.step({1})[0];
  // Skip the first transitions while the pipeline warms up.
  sim.step({1});
  prev = sim.step({1})[0];
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t cur = sim.step({1})[0];
    const auto flips = __builtin_popcountll(prev ^ cur);
    EXPECT_LE(flips, 1) << "gray violation at step " << i;
    prev = cur;
  }
}

TEST(NewGenerators, BarrelShifterShifts) {
  rtl::Simulator sim(rtl::make_barrel_shifter(8));
  sim.step({0x01, 3});
  const auto out = sim.step({0x01, 3});
  EXPECT_EQ(out[0], 0x08u);
}

TEST(ScaleFree, RecoversKnownExponent) {
  // Samples drawn from P(x) ~ x^-2.5 via inverse CDF.
  util::Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) {
    samples.push_back(std::pow(1.0 - rng.uniform(), -1.0 / 1.5));
  }
  const auto fit = stats::fit_power_law(samples, 1.0);
  EXPECT_NEAR(fit.alpha, 2.5, 0.15);
  EXPECT_LT(fit.ks_distance, 0.05);
}

TEST(ScaleFree, CorpusDegreesAreHeavyTailed) {
  // Real circuits are scale-free-ish: exponent in a plausible band.
  auto corpus = rtl::make_corpus({.seed = 1});
  const auto fit = stats::degree_power_law(corpus.back().graph);
  EXPECT_GT(fit.alpha, 1.2);
  EXPECT_LT(fit.alpha, 8.0);  // small designs fit steep but finite tails
  EXPECT_GT(fit.tail_samples, 10u);
}

TEST(CriticalPath, WorstPathMatchesWns) {
  const auto result = synth::synthesize(rtl::make_alu(10));
  const sta::TimingOptions options{.clock_period_ns = 0.6};
  const auto report = sta::analyze(result.netlist, options);
  const auto paths = sta::worst_paths(result.netlist, options, 3);
  ASSERT_FALSE(paths.empty());
  EXPECT_NEAR(paths.front().slack_ns, report.wns, 1e-9);
  // Paths are sorted by slack and non-empty.
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].slack_ns, paths[i - 1].slack_ns);
  }
  for (const auto& p : paths) {
    EXPECT_FALSE(p.nodes.empty());
    // Arrival times must be monotone along the traced path.
    for (std::size_t k = 1; k < p.nodes.size(); ++k) {
      EXPECT_GE(p.nodes[k].arrival_ns, p.nodes[k - 1].arrival_ns - 1e-9);
    }
  }
  EXPECT_FALSE(sta::render_path(paths.front()).empty());
}

}  // namespace
}  // namespace syn
