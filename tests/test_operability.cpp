// Operability tier: MetricsRegistry, the METRICS protocol verb,
// admission quotas (typed quota_exceeded rejections, quota release on
// cancel/complete, two-client isolation), terminal-job GC (bounded
// scheduler/spec/event-log metadata, typed "expired" answers, TTL
// sweeps) and the `synctl bench` load-test harness end to end against a
// stub-backend daemon. Part of the TSan CI tier — the metrics fuzz and
// the two-client quota test are its concurrency surface.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/generator.hpp"
#include "core/postprocess.hpp"
#include "graph/adjacency.hpp"
#include "nn/matrix.hpp"
#include "rtl/generators.hpp"
#include "server/bench.hpp"
#include "server/client.hpp"
#include "server/daemon.hpp"
#include "server/metrics.hpp"
#include "server/protocol.hpp"
#include "server/scheduler.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace syn {
namespace {

using server::ClientConnection;
using server::Daemon;
using server::DaemonConfig;
using server::DaemonError;
using server::FittedBackend;
using server::JobScheduler;
using server::JobSpec;
using server::JobState;
using server::MetricsRegistry;
using server::QuotaError;
using server::StreamFilter;
using util::Json;

// ------------------------------------------------------- MetricsRegistry

TEST(Metrics, CountersAreMonotonicAndCreatedOnFirstUse) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter("never"), 0u);
  registry.inc("a");
  registry.inc("a", 4);
  registry.inc("b");
  EXPECT_EQ(registry.counter("a"), 5u);
  EXPECT_EQ(registry.counter("b"), 1u);
  const Json snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.at("counters").at("a").u64(), 5u);
  EXPECT_EQ(snapshot.at("counters").at("b").u64(), 1u);
}

TEST(Metrics, PullGaugesWinOverSetGaugesAndRunUnlocked) {
  MetricsRegistry registry;
  registry.set_gauge("depth", 3);
  EXPECT_EQ(registry.snapshot().at("gauges").at("depth").i64(), 3);
  // A provider may itself touch the registry — the registry must not
  // hold its own lock while calling it (leaf-lock rule).
  registry.register_gauge("depth", [&registry] {
    return static_cast<std::int64_t>(registry.counter("a")) + 7;
  });
  registry.inc("a", 2);
  EXPECT_EQ(registry.snapshot().at("gauges").at("depth").i64(), 9);
}

TEST(Metrics, LatencyTrackReportsQuantilesFromBinnedSamples) {
  MetricsRegistry registry;
  registry.declare_track("lat", 0.0, 100.0, 100);  // 1 ms bins
  for (int i = 1; i <= 100; ++i) {
    registry.observe("lat", static_cast<double>(i));
  }
  const Json track = registry.snapshot().at("latency").at("lat");
  EXPECT_EQ(track.at("count").u64(), 100u);
  EXPECT_NEAR(track.at("mean").number(), 50.5, 1e-9);
  EXPECT_NEAR(track.at("min").number(), 1.0, 1e-9);
  EXPECT_NEAR(track.at("max").number(), 100.0, 1e-9);
  // Quantiles are interpolated from 1 ms bins: exact to bin width.
  EXPECT_NEAR(track.at("p50").number(), 50.0, 1.5);
  EXPECT_NEAR(track.at("p95").number(), 95.0, 1.5);
  EXPECT_NEAR(track.at("p99").number(), 99.0, 1.5);
}

TEST(Metrics, ObserveOnUndeclaredTrackUsesDefaultGeometry) {
  MetricsRegistry registry;
  registry.observe("adhoc", 12.0);
  const Json track = registry.snapshot().at("latency").at("adhoc");
  EXPECT_EQ(track.at("count").u64(), 1u);
  EXPECT_NEAR(track.at("max").number(), 12.0, 1e-9);
}

TEST(Metrics, RenderTextFlattensSectionsToScrapeLines) {
  MetricsRegistry registry;
  registry.inc("jobs_submitted", 42);
  registry.set_gauge("connections", 2);
  Json snapshot = registry.snapshot();
  Json extra;  // daemon-style extra section with one nesting level
  extra.set("done", static_cast<std::uint64_t>(40));
  snapshot.set("jobs", std::move(extra));
  Json inference;  // string leaves render as info gauges (value label, 1)
  inference.set("simd_level", std::string("avx2"));
  snapshot.set("inference", std::move(inference));
  const std::string text = server::render_metrics_text(snapshot);
  EXPECT_NE(text.find("syn_counters_jobs_submitted 42"), std::string::npos)
      << text;
  EXPECT_NE(text.find("syn_gauges_connections 2"), std::string::npos) << text;
  EXPECT_NE(text.find("syn_jobs_done 40"), std::string::npos) << text;
  EXPECT_NE(text.find("syn_inference_simd_level{value=\"avx2\"} 1"),
            std::string::npos)
      << text;
}

TEST(Metrics, PercentileHelpersMatchOrderStatistics) {
  const std::vector<double> values{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_NEAR(util::percentile(values, 0.0), 1.0, 1e-9);
  EXPECT_NEAR(util::percentile(values, 0.5), 3.0, 1e-9);
  EXPECT_NEAR(util::percentile(values, 1.0), 5.0, 1e-9);
  EXPECT_EQ(util::percentile({}, 0.5), 0.0);

  // Ten samples in each of the bins holding 0.5, 1.5, ..., 9.5 (0.1-wide
  // bins). Quantiles interpolate inside the crossing bin, so they are
  // exact to the bin width.
  util::Histogram hist(0.0, 10.0, 100);
  for (int i = 0; i < 100; ++i) hist.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(util::histogram_quantile(util::Histogram(0.0, 1.0, 4), 0.5), 0.0);
  EXPECT_NEAR(util::histogram_quantile(hist, 0.0), 0.5, 0.11);
  EXPECT_NEAR(util::histogram_quantile(hist, 0.5), 4.6, 0.11);
  EXPECT_NEAR(util::histogram_quantile(hist, 1.0), 9.6, 0.11);
}

// ------------------------------------------------------ scheduler quotas

JobScheduler::Options slots(std::size_t max_concurrent,
                            JobScheduler::Quotas quotas = {}) {
  JobScheduler::Options options;
  options.max_concurrent = max_concurrent;
  options.quotas = quotas;
  return options;
}

TEST(SchedulerQuota, PerClientQueueQuotaRejectsAndReleases) {
  // One slot, one queued job per client allowed. A gate keeps the head
  // job running so queue depth is under test control.
  JobScheduler scheduler(slots(1, {.max_queued_per_client = 1}));
  std::atomic<bool> release{false};
  const std::string head =
      scheduler.submit("alice", [&](const JobScheduler::Handle&) {
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
  // Wait until the head job occupies the slot (queued -> running).
  while (scheduler.info(head).state != JobState::kRunning) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::string queued =
      scheduler.submit("alice", [](const JobScheduler::Handle&) {});
  EXPECT_THROW(scheduler.submit("alice", [](const JobScheduler::Handle&) {}),
               QuotaError);
  // Another client is unaffected by alice's full queue.
  const std::string bobs =
      scheduler.submit("bob", [](const JobScheduler::Handle&) {});
  // Cancelling the queued job releases the quota immediately.
  EXPECT_TRUE(scheduler.cancel(queued));
  const std::string retry =
      scheduler.submit("alice", [](const JobScheduler::Handle&) {});
  release.store(true);
  scheduler.wait(retry);
  scheduler.wait(bobs);
  const JobScheduler::Counts counts = scheduler.counts();
  EXPECT_EQ(counts.submitted, 4u);
  EXPECT_EQ(counts.rejected, 1u);
  EXPECT_EQ(counts.cancelled, 1u);
  scheduler.shutdown(true);
}

TEST(SchedulerQuota, ActiveQuotaCountsRunningJobsAndFreesOnCompletion) {
  JobScheduler scheduler(slots(1, {.max_active_per_client = 1}));
  std::atomic<bool> release{false};
  const std::string head =
      scheduler.submit("c", [&](const JobScheduler::Handle&) {
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
  while (scheduler.info(head).state != JobState::kRunning) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Running counts against the active quota even with an empty queue.
  EXPECT_THROW(scheduler.submit("c", [](const JobScheduler::Handle&) {}),
               QuotaError);
  release.store(true);
  scheduler.wait(head);
  const std::string next =
      scheduler.submit("c", [](const JobScheduler::Handle&) {});
  EXPECT_EQ(scheduler.wait(next), JobState::kDone);
  scheduler.shutdown(true);
}

TEST(SchedulerQuota, GlobalQueueQuotaSpansClients) {
  JobScheduler scheduler(slots(1, {.max_total_queued = 1}));
  std::atomic<bool> release{false};
  const std::string head =
      scheduler.submit("a", [&](const JobScheduler::Handle&) {
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
  while (scheduler.info(head).state != JobState::kRunning) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (void)scheduler.submit("a", [](const JobScheduler::Handle&) {});
  EXPECT_THROW(scheduler.submit("b", [](const JobScheduler::Handle&) {}),
               QuotaError);  // global: a different client is also rejected
  release.store(true);
  scheduler.shutdown(true);
}

// --------------------------------------------------- scheduler erase/GC

TEST(SchedulerGC, EraseTerminalForgetsJobAndClientBookkeeping) {
  JobScheduler scheduler(slots(2));
  std::atomic<bool> release{false};
  const std::string running =
      scheduler.submit("a", [&](const JobScheduler::Handle&) {
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
  const std::string finished =
      scheduler.submit("b", [](const JobScheduler::Handle&) {});
  scheduler.wait(finished);
  while (scheduler.info(running).state != JobState::kRunning) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  EXPECT_FALSE(scheduler.erase_terminal(running));  // not terminal
  EXPECT_FALSE(scheduler.erase_terminal("job-999"));
  EXPECT_TRUE(scheduler.erase_terminal(finished));
  EXPECT_FALSE(scheduler.erase_terminal(finished));  // already gone
  EXPECT_THROW(scheduler.info(finished), std::out_of_range);
  // b has no remaining jobs: its fair-share entry is dropped too.
  EXPECT_EQ(scheduler.client_loads().count("b"), 0u);
  EXPECT_EQ(scheduler.client_loads().count("a"), 1u);
  EXPECT_EQ(scheduler.tracked_jobs(), 1u);
  // Terminal counters survive the erase — they are monotonic history.
  EXPECT_EQ(scheduler.counts().done, 1u);
  release.store(true);
  scheduler.shutdown(true);
}

TEST(SchedulerGC, ErasingKeepsTrackedJobsBoundedOverManySubmissions) {
  JobScheduler scheduler(slots(2));
  for (int i = 0; i < 64; ++i) {
    const std::string id =
        scheduler.submit("c", [](const JobScheduler::Handle&) {});
    scheduler.wait(id);
    EXPECT_TRUE(scheduler.erase_terminal(id));
    EXPECT_EQ(scheduler.tracked_jobs(), 0u);
  }
  EXPECT_EQ(scheduler.counts().done, 64u);
  EXPECT_EQ(scheduler.counts().submitted, 64u);
  scheduler.shutdown(true);
}

// ----------------------------------------------------- daemon fixtures

/// Cheap deterministic model (same construction as test_server's stub,
/// plus a total fallback: repair_to_valid rejects some (attrs, stream)
/// pairs outright, and these tests sweep arbitrary seeds — a quota/GC
/// test must not depend on which seeds happen to repair. The fallback is
/// still a pure function of the inputs, so reruns stay byte-identical).
class StubModel : public core::GeneratorModel {
 public:
  void fit(const std::vector<graph::Graph>&) override {}
  graph::Graph generate(const graph::NodeAttrs& attrs,
                        util::Rng& rng) override {
    const std::size_t n = attrs.size();
    for (int attempt = 0; attempt < 20; ++attempt) {
      graph::AdjacencyMatrix gini(n);
      nn::Matrix probs(n, n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (i != j) gini.set(i, j, rng.bernoulli(0.05));
          probs.at(i, j) = static_cast<float>(rng.uniform());
        }
      }
      try {
        return core::repair_to_valid(attrs, gini, probs, rng);
      } catch (const std::exception&) {
      }
    }
    return rtl::make_counter(4);
  }
  [[nodiscard]] std::string name() const override { return "Stub"; }
};

FittedBackend stub_backend() {
  auto sampler = std::make_shared<core::AttrSampler>();
  sampler->fit({rtl::make_counter(4), rtl::make_fifo_ctrl(2),
                rtl::make_fsm(2, 2)});
  return {std::make_shared<StubModel>(),
          [sampler](std::size_t i, util::Rng& rng) {
            return sampler->sample(10 + 2 * (i % 3), rng);
          }};
}

class OperabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("syn_ops_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path socket_path() const {
    // Unix socket paths are limited to ~107 bytes; keep it short.
    return std::filesystem::path(::testing::TempDir()) /
           ("syno_" + std::to_string(::getpid()) + "_" +
            std::to_string(socket_counter_++) + ".sock");
  }

  DaemonConfig stub_config(const std::filesystem::path& socket) const {
    DaemonConfig config;
    config.socket_path = socket;
    config.max_concurrent = 2;
    config.factory = [](const std::string& name) {
      if (name != "stub") {
        throw std::invalid_argument("unknown backend \"" + name + "\"");
      }
      return stub_backend();
    };
    return config;
  }

  JobSpec stub_spec(std::size_t count, std::uint64_t seed,
                    const std::string& sub = "") const {
    JobSpec spec;
    spec.count = count;
    spec.seed = seed;
    spec.backend = "stub";
    spec.out = sub.empty() ? dir_ : dir_ / sub;
    spec.batch = 2;
    spec.threads = 1;
    spec.shard_size = 2;
    spec.queue = 4;
    spec.synth_stats = false;
    return spec;
  }

  std::filesystem::path dir_;
  mutable int socket_counter_ = 0;
};

/// start() + serve()-on-a-thread wrapper so tests tear down cleanly.
class RunningDaemon {
 public:
  explicit RunningDaemon(const DaemonConfig& config) : daemon_(config) {
    daemon_.start();
    thread_ = std::thread([this] { daemon_.serve(); });
  }
  ~RunningDaemon() { stop(true); }
  void stop(bool drain) {
    if (thread_.joinable()) {
      daemon_.request_stop(drain);
      thread_.join();
    }
  }
  Daemon& operator*() { return daemon_; }

 private:
  Daemon daemon_;
  std::thread thread_;
};

/// The exact accounting identity every METRICS snapshot must satisfy:
/// each admitted job is in precisely one state.
void expect_jobs_identity(const Json& metrics) {
  const Json& jobs = metrics.at("jobs");
  EXPECT_EQ(jobs.at("submitted").u64(),
            jobs.at("done").u64() + jobs.at("failed").u64() +
                jobs.at("cancelled").u64() + jobs.at("running").u64() +
                jobs.at("queued").u64())
      << metrics.dump();
}

/// Polls `predicate` against fresh METRICS snapshots until it holds or
/// the deadline passes (terminal callbacks and GC run asynchronously
/// relative to stream "end" events).
Json wait_for_metrics(ClientConnection& conn,
                      const std::function<bool(const Json&)>& predicate) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (true) {
    Json metrics = conn.metrics();
    if (predicate(metrics)) return metrics;
    if (std::chrono::steady_clock::now() >= deadline) {
      ADD_FAILURE() << "metrics condition not reached: " << metrics.dump();
      return metrics;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// ----------------------------------------------------- daemon: metrics

TEST_F(OperabilityTest, MetricsReportExactCountsAndMonotonicCounters) {
  const auto socket = socket_path();
  RunningDaemon daemon(stub_config(socket));
  auto conn = ClientConnection::connect_unix(socket);

  const Json before = conn.metrics();
  expect_jobs_identity(before);
  EXPECT_EQ(before.at("jobs").at("submitted").u64(), 0u);

  // Two successful jobs and one that fails at backend construction.
  const std::string a = conn.submit(stub_spec(4, 1, "a"), "alice");
  EXPECT_EQ(conn.stream(a, nullptr), "done");
  const std::string b = conn.submit(stub_spec(3, 2, "b"), "alice");
  EXPECT_EQ(conn.stream(b, nullptr), "done");
  auto bad = stub_spec(2, 3, "c");
  bad.backend = "nope";
  const std::string c = conn.submit(bad, "bob");
  EXPECT_EQ(conn.stream(c, nullptr), "failed");

  const Json after = wait_for_metrics(conn, [](const Json& m) {
    return m.at("jobs").at("done").u64() == 2 &&
           m.at("jobs").at("failed").u64() == 1;
  });
  expect_jobs_identity(after);
  const Json& jobs = after.at("jobs");
  EXPECT_EQ(jobs.at("submitted").u64(), 3u);
  EXPECT_EQ(jobs.at("rejected").u64(), 0u);
  EXPECT_EQ(jobs.at("queued").u64(), 0u);
  EXPECT_EQ(jobs.at("running").u64(), 0u);
  EXPECT_EQ(jobs.at("cancelled").u64(), 0u);
  const Json& counters = after.at("counters");
  EXPECT_EQ(counters.at("submit_accepted").u64(), 3u);
  // 4 + 3 record events streamed; every design checkpointed.
  EXPECT_EQ(counters.at("records_streamed").u64(), 7u);
  EXPECT_EQ(counters.at("designs_committed").u64(), 7u);
  // Per-client section tracks both clients with no live load.
  EXPECT_EQ(after.at("clients").at("alice").at("active").u64(), 0u);
  EXPECT_EQ(after.at("clients").at("bob").at("active").u64(), 0u);
  // Latency tracks saw every job.
  EXPECT_EQ(after.at("latency").at("job_ms").at("count").u64(), 3u);
  EXPECT_EQ(after.at("latency").at("dispatch_ms").at("count").u64(), 3u);

  // Counters are monotonic across PING + METRICS churn (each request
  // itself bumps the requests counter).
  const std::uint64_t requests = counters.at("requests").u64();
  server::Request ping;
  ping.cmd = server::Request::Cmd::kPing;
  (void)conn.request(ping);
  const Json later = conn.metrics();
  EXPECT_GT(later.at("counters").at("requests").u64(), requests);
  EXPECT_GE(later.at("counters").at("records_streamed").u64(), 7u);
  EXPECT_GE(later.at("jobs").at("submitted").u64(), 3u);
}

TEST_F(OperabilityTest, MetricsIdentityHoldsUnderConcurrentSubmitCancel) {
  const auto socket = socket_path();
  DaemonConfig config = stub_config(socket);
  config.gc_retain = 2;  // GC churn while the fuzz runs
  RunningDaemon daemon(config);

  constexpr std::size_t kSubmitters = 2;
  constexpr std::size_t kJobsEach = 8;
  std::atomic<bool> running{true};
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      auto conn = ClientConnection::connect_unix(socket);
      for (std::size_t j = 0; j < kJobsEach; ++j) {
        const std::string sub =
            "f" + std::to_string(t) + "_" + std::to_string(j);
        const std::string id = conn.submit(
            stub_spec(2, 100 + t * 100 + j, sub),
            "fuzz-" + std::to_string(t));
        if (j % 2 == 1) {
          try {
            (void)conn.cancel(id);
          } catch (const DaemonError&) {
            // Already GC-evicted: a legal race under gc_retain=2.
          }
        }
      }
    });
  }

  // Poller: every snapshot must satisfy the identity exactly, and
  // submitted must never decrease — even mid-churn, even while GC evicts.
  auto conn = ClientConnection::connect_unix(socket);
  std::uint64_t last_submitted = 0;
  while (running.load()) {
    const Json metrics = conn.metrics();
    expect_jobs_identity(metrics);
    const std::uint64_t submitted = metrics.at("jobs").at("submitted").u64();
    EXPECT_GE(submitted, last_submitted);
    last_submitted = submitted;
    if (submitted >= kSubmitters * kJobsEach) running.store(false);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (std::thread& t : submitters) t.join();

  const Json final_metrics = wait_for_metrics(conn, [](const Json& m) {
    return m.at("jobs").at("queued").u64() == 0 &&
           m.at("jobs").at("running").u64() == 0;
  });
  expect_jobs_identity(final_metrics);
  EXPECT_EQ(final_metrics.at("jobs").at("submitted").u64(),
            kSubmitters * kJobsEach);
}

// ------------------------------------------------------ daemon: quotas

TEST_F(OperabilityTest, OverQuotaSubmitGetsTypedErrorAndFreesOnCancel) {
  const auto socket = socket_path();
  DaemonConfig config = stub_config(socket);
  config.max_concurrent = 1;
  config.quotas.max_queued_per_client = 1;
  RunningDaemon daemon(config);
  auto conn = ClientConnection::connect_unix(socket);

  // Big head job occupies the slot; poll until it leaves the queue.
  const std::string head = conn.submit(stub_spec(300, 1, "head"), "alice");
  while (conn.status(head).at("state").str() != "running") {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::string queued = conn.submit(stub_spec(2, 2, "q"), "alice");
  try {
    (void)conn.submit(stub_spec(2, 3, "r"), "alice");
    FAIL() << "over-quota submit must be rejected";
  } catch (const DaemonError& e) {
    EXPECT_EQ(e.code, server::kErrorCodeQuota);
    EXPECT_NE(std::string(e.what()).find("quota"), std::string::npos)
        << e.what();
  }
  // Another client still gets in; alice gets in again after cancelling
  // her queued job (quota released immediately).
  const std::string bobs = conn.submit(stub_spec(2, 4, "b"), "bob");
  (void)conn.cancel(queued);
  const std::string retry = conn.submit(stub_spec(2, 5, "r2"), "alice");
  (void)conn.cancel(head);
  EXPECT_EQ(conn.stream(head, nullptr), "cancelled");
  EXPECT_EQ(conn.stream(bobs, nullptr), "done");
  EXPECT_EQ(conn.stream(retry, nullptr), "done");

  const Json metrics = conn.metrics();
  EXPECT_EQ(metrics.at("jobs").at("rejected").u64(), 1u);
  EXPECT_EQ(metrics.at("counters").at("submit_rejected").u64(), 1u);
}

TEST_F(OperabilityTest, DesignCountQuotaRejectsBeforeScheduling) {
  const auto socket = socket_path();
  DaemonConfig config = stub_config(socket);
  config.max_designs_per_job = 10;
  RunningDaemon daemon(config);
  auto conn = ClientConnection::connect_unix(socket);
  try {
    (void)conn.submit(stub_spec(11, 1, "big"));
    FAIL() << "over-size submit must be rejected";
  } catch (const DaemonError& e) {
    EXPECT_EQ(e.code, server::kErrorCodeQuota);
  }
  // The rejection never reached the scheduler.
  const Json metrics = conn.metrics();
  EXPECT_EQ(metrics.at("jobs").at("submitted").u64(), 0u);
  EXPECT_EQ(metrics.at("counters").at("submit_rejected").u64(), 1u);
  // At the limit is fine.
  const std::string ok = conn.submit(stub_spec(10, 1, "ok"));
  EXPECT_EQ(conn.stream(ok, nullptr), "done");
}

TEST_F(OperabilityTest, DiskBudgetQuotaRejectsFullOutputDir) {
  const auto socket = socket_path();
  DaemonConfig config = stub_config(socket);
  config.max_out_bytes = 1;  // any prior byte in the dir rejects
  RunningDaemon daemon(config);
  auto conn = ClientConnection::connect_unix(socket);
  // Empty (missing) dir passes the budget.
  const std::string first = conn.submit(stub_spec(2, 1, "d"));
  EXPECT_EQ(conn.stream(first, nullptr), "done");
  // Now the dir holds the dataset: the next submit is over budget.
  try {
    (void)conn.submit(stub_spec(4, 1, "d"));
    FAIL() << "over-budget submit must be rejected";
  } catch (const DaemonError& e) {
    EXPECT_EQ(e.code, server::kErrorCodeQuota);
  }
}

TEST_F(OperabilityTest, TwoClientsUnderQuotaPressureBothComplete) {
  const auto socket = socket_path();
  DaemonConfig config = stub_config(socket);
  config.quotas.max_queued_per_client = 2;
  RunningDaemon daemon(config);

  constexpr std::size_t kJobsEach = 6;
  std::atomic<std::size_t> rejections{0};
  const auto client_thread = [&](std::size_t index) {
    auto conn = ClientConnection::connect_unix(socket);
    const std::string name = "load-" + std::to_string(index);
    std::vector<std::string> ids;
    for (std::size_t j = 0; j < kJobsEach; ++j) {
      const std::string sub =
          "t" + std::to_string(index) + "_" + std::to_string(j);
      while (true) {
        try {
          ids.push_back(
              conn.submit(stub_spec(2, index * 100 + j, sub), name));
          break;
        } catch (const DaemonError& e) {
          ASSERT_EQ(e.code, server::kErrorCodeQuota) << e.what();
          rejections.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
    }
    for (const std::string& id : ids) {
      EXPECT_EQ(conn.stream(id, nullptr), "done") << name << " " << id;
    }
  };
  std::thread first(client_thread, 0);
  std::thread second(client_thread, 1);
  first.join();
  second.join();

  auto conn = ClientConnection::connect_unix(socket);
  const Json metrics = wait_for_metrics(conn, [](const Json& m) {
    return m.at("jobs").at("done").u64() == 2 * kJobsEach;
  });
  expect_jobs_identity(metrics);
  EXPECT_EQ(metrics.at("jobs").at("submitted").u64(), 2 * kJobsEach);
  EXPECT_EQ(metrics.at("jobs").at("rejected").u64(), rejections.load());
}

// ---------------------------------------------------------- daemon: GC

TEST_F(OperabilityTest, TerminalJobsAreEvictedBeyondRetention) {
  const auto socket = socket_path();
  DaemonConfig config = stub_config(socket);
  config.gc_retain = 3;
  RunningDaemon daemon(config);
  auto conn = ClientConnection::connect_unix(socket);

  // 2x the retention: the first 3 finished jobs must be evicted. Every
  // job shares one output dir + seed, so jobs 2..6 resume-complete
  // instantly — this test is about metadata, not datasets.
  std::vector<std::string> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(conn.submit(stub_spec(4, 7, "gc"), "gc-client"));
    EXPECT_EQ(conn.stream(ids.back(), nullptr), "done");
  }

  const Json metrics = wait_for_metrics(conn, [](const Json& m) {
    return m.at("jobs").at("expired").u64() == 3;
  });
  // Metadata is bounded by retention, not submission count — scheduler
  // jobs_, daemon specs_ and event logs all evicted together.
  EXPECT_EQ(metrics.at("jobs").at("tracked").u64(), 3u);
  EXPECT_EQ(metrics.at("gauges").at("tracked_specs").i64(), 3);
  EXPECT_EQ(metrics.at("gauges").at("event_logs").i64(), 3);
  EXPECT_EQ(metrics.at("gauges").at("terminal_retained").i64(), 3);

  // Evicted ids answer with the typed "expired" error, retained ids
  // still answer STATUS normally.
  try {
    (void)conn.status(ids.front());
    FAIL() << "evicted job must report expired";
  } catch (const DaemonError& e) {
    EXPECT_EQ(e.code, server::kErrorCodeExpired);
  }
  EXPECT_EQ(conn.status(ids.back()).at("state").str(), "done");
  // A genuinely unknown id is distinguishable from an expired one.
  try {
    (void)conn.status("job-424242");
    FAIL() << "unknown job must report unknown_job";
  } catch (const DaemonError& e) {
    EXPECT_EQ(e.code, server::kErrorCodeUnknownJob);
  }
  // STREAM and CANCEL answer expired too (and must not hang on a
  // recreated, never-closed event log).
  try {
    (void)conn.stream(ids.front(), nullptr);
    FAIL() << "stream of an evicted job must report expired";
  } catch (const DaemonError& e) {
    EXPECT_EQ(e.code, server::kErrorCodeExpired);
  }
  try {
    (void)conn.cancel(ids.front());
    FAIL() << "cancel of an evicted job must report expired";
  } catch (const DaemonError& e) {
    EXPECT_EQ(e.code, server::kErrorCodeExpired);
  }
}

TEST_F(OperabilityTest, GcTtlSweepsOnMetricsPoll) {
  const auto socket = socket_path();
  DaemonConfig config = stub_config(socket);
  config.gc_ttl = std::chrono::milliseconds(30);
  RunningDaemon daemon(config);
  auto conn = ClientConnection::connect_unix(socket);

  const std::string id = conn.submit(stub_spec(2, 1, "ttl"));
  EXPECT_EQ(conn.stream(id, nullptr), "done");
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // No terminal events fire anymore; the METRICS poll runs the sweep.
  const Json metrics = wait_for_metrics(conn, [](const Json& m) {
    return m.at("jobs").at("expired").u64() == 1;
  });
  EXPECT_EQ(metrics.at("jobs").at("tracked").u64(), 0u);
  try {
    (void)conn.status(id);
    FAIL() << "TTL-evicted job must report expired";
  } catch (const DaemonError& e) {
    EXPECT_EQ(e.code, server::kErrorCodeExpired);
  }
}

// ------------------------------------------------- daemon: stream filter

TEST_F(OperabilityTest, StreamFilterSelectsEventKinds) {
  const auto socket = socket_path();
  RunningDaemon daemon(stub_config(socket));
  auto conn = ClientConnection::connect_unix(socket);

  const std::string id = conn.submit(stub_spec(5, 9, "sf"));
  std::vector<std::string> record_kinds;
  EXPECT_EQ(conn.stream(
                id,
                [&](const Json& event) {
                  record_kinds.push_back(event.at("event").str());
                },
                StreamFilter::kRecords),
            "done");
  ASSERT_EQ(record_kinds.size(), 6u);  // 5 records + end, nothing else
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(record_kinds[i], "record");
  EXPECT_EQ(record_kinds.back(), "end");

  // Replay the finished job through the checkpoints filter: only
  // checkpoint events plus the terminal end — no records, no summary.
  std::vector<std::string> checkpoint_kinds;
  EXPECT_EQ(conn.stream(
                id,
                [&](const Json& event) {
                  checkpoint_kinds.push_back(event.at("event").str());
                },
                StreamFilter::kCheckpoints),
            "done");
  ASSERT_GE(checkpoint_kinds.size(), 2u);
  for (std::size_t i = 0; i + 1 < checkpoint_kinds.size(); ++i) {
    EXPECT_EQ(checkpoint_kinds[i], "checkpoint");
  }
  EXPECT_EQ(checkpoint_kinds.back(), "end");

  // An unfiltered replay still carries record + checkpoint + summary.
  std::vector<std::string> all_kinds;
  (void)conn.stream(id, [&](const Json& event) {
    all_kinds.push_back(event.at("event").str());
  });
  EXPECT_NE(std::find(all_kinds.begin(), all_kinds.end(), "summary"),
            all_kinds.end());

  // An unknown filter value is a protocol error, not a dropped
  // connection.
  conn.send_line(R"({"cmd":"stream","id":")" + id + R"(","filter":"bogus"})");
  const auto reply = conn.recv_line();
  ASSERT_TRUE(reply.has_value());
  const Json parsed = Json::parse(*reply);
  EXPECT_FALSE(parsed.at("ok").boolean());
  EXPECT_NE(parsed.at("error").str().find("stream filter"),
            std::string::npos);
}

// ------------------------------------------------------- bench harness

TEST_F(OperabilityTest, BenchRunsCleanAndReconcilesWithMetrics) {
  const auto socket = socket_path();
  RunningDaemon daemon(stub_config(socket));

  server::BenchOptions options;
  options.socket_path = socket;
  options.clients = 3;
  options.total_jobs = 6;
  options.spec = stub_spec(3, 500);
  options.out_root = dir_ / "bench";
  const server::BenchReport report = server::run_bench(options);

  EXPECT_TRUE(report.ok()) << report.render();
  EXPECT_EQ(report.submitted, 6u);
  EXPECT_EQ(report.done, 6u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.records_streamed, 18u);  // 6 jobs x 3 designs
  ASSERT_EQ(report.submit_to_terminal_ms.size(), 6u);
  for (const double ms : report.submit_to_terminal_ms) EXPECT_GT(ms, 0.0);
  EXPECT_GT(report.wall_seconds, 0.0);

  // The rendered report carries the non-empty latency histogram and the
  // headline counters.
  const std::string rendered = report.render();
  EXPECT_NE(rendered.find("submit->terminal p50"), std::string::npos);
  EXPECT_NE(rendered.find("submit->terminal latency (ms)"),
            std::string::npos);

  // The daemon's own accounting agrees with the client-side report.
  auto conn = ClientConnection::connect_unix(socket);
  const Json metrics = wait_for_metrics(conn, [](const Json& m) {
    return m.at("jobs").at("done").u64() == 6;
  });
  expect_jobs_identity(metrics);
  EXPECT_EQ(metrics.at("jobs").at("submitted").u64(), 6u);
  EXPECT_EQ(metrics.at("counters").at("records_streamed").u64(), 18u);
}

}  // namespace
}  // namespace syn
