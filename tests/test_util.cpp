// Tests for the utility layer: RNG statistical sanity and determinism,
// table formatting, summaries, and the hand-rolled JSON used by the
// daemon protocol.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace syn::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(7);
  Rng child1 = parent.fork(3);
  parent.next();
  // fork() depends only on parent state at fork time; consume after fork
  // must not matter for a fork taken earlier.
  Rng parent2(7);
  Rng child2 = parent2.fork(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child1.next(), child2.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double u = rng.uniform();
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_GE(lo, 0.0);
  EXPECT_LT(hi, 1.0);
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(12);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
  for (int i = 0; i < 100; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(14);
  double sum = 0.0, sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.03);
  EXPECT_NEAR(sq / kSamples, 1.0, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(15);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 8000; ++i) {
    const auto idx = rng.weighted_index(weights);
    ASSERT_LT(idx, 3u);
    ++counts[idx];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, WeightedIndexZeroTotalSignalsFailure) {
  Rng rng(16);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(weights), weights.size());
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(17);
  const auto sample = rng.sample_without_replacement(20, 8);
  EXPECT_EQ(sample.size(), 8u);
  EXPECT_EQ(std::set<std::size_t>(sample.begin(), sample.end()).size(), 8u);
  // Requesting more than available truncates.
  EXPECT_EQ(rng.sample_without_replacement(3, 10).size(), 3u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(18);
  std::vector<int> v{1, 2, 3, 4, 5};
  auto copy = v;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Table, AlignsAndPads) {
  Table t({"a", "bbbb"});
  t.add_row({"xx", "y"});
  t.add_row({"z"});  // short row padded
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| xx | y    |"), std::string::npos);
  EXPECT_NE(s.find("| z  |      |"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_pct(0.25), "25%");
  EXPECT_EQ(fmt_sig(0.000123, 2), "0.00012");
  EXPECT_EQ(fmt_sig(std::numeric_limits<double>::quiet_NaN()), "NA");
}

TEST(Summary, QuartilesOfKnownSample) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Summary, EmptySampleIsAllZero) {
  const auto s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(3.0);
  h.add(3.5);
  const std::string s = h.render(10);
  EXPECT_NE(s.find(" 1"), std::string::npos);
  EXPECT_NE(s.find(" 2"), std::string::npos);
}

// Regression: add() used to cast t * bins to an integer BEFORE clamping —
// UB for NaN and for samples far outside [lo, hi] (the cast of 1e300
// overflows any integer type). Runs under the UBSan CI tier, which traps
// the old behaviour.
TEST(Histogram, WildAndNonFiniteSamplesAreSafe) {
  Histogram h(0.0, 100.0, 10);
  h.add(1e300);   // would overflow the old pre-clamp integer cast
  h.add(-1e300);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(9), 2u);  // huge values clamp into the last bin
  EXPECT_EQ(h.count(0), 2u);  // hugely negative into the first
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.nan_count(), 0u);

  // NaN has no position: dropped from bins and total, tallied separately.
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.nan_count(), 1u);
  std::size_t binned = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) binned += h.count(b);
  EXPECT_EQ(binned, 4u);

  // In-range values still bin exactly as before.
  h.add(55.0);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Percentiles, SingleSortMatchesPerCallPercentile) {
  Rng rng(77);
  std::vector<double> samples;
  for (int i = 0; i < 257; ++i) samples.push_back(rng.uniform() * 1000.0);
  const std::vector<double> qs{0.99, 0.5, 0.0, 0.95, 1.0, 0.25};  // unsorted
  const auto batch = percentiles(samples, qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(batch[i], percentile(samples, qs[i])) << "q=" << qs[i];
  }
  EXPECT_EQ(percentiles(std::vector<double>{}, qs).size(), qs.size());
}

TEST(Percentiles, HistogramQuantilesMatchPerCallWalk) {
  Histogram h(0.0, 50.0, 25);
  Rng rng(78);
  for (int i = 0; i < 500; ++i) h.add(rng.uniform() * 60.0 - 5.0);
  const std::vector<double> qs{0.99, 0.5, 0.95, 0.0, 1.0};  // unsorted
  const auto batch = histogram_quantiles(h, qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(batch[i], histogram_quantile(h, qs[i])) << "q=" << qs[i];
  }
  // Sparse histogram (empty bins between occupied ones) and empty hist.
  Histogram sparse(0.0, 10.0, 10);
  sparse.add(0.5);
  sparse.add(9.5);
  for (double q : {0.0, 0.3, 0.5, 0.9, 1.0}) {
    EXPECT_EQ(histogram_quantiles(sparse, {&q, 1})[0],
              histogram_quantile(sparse, q));
  }
  const Histogram empty(0.0, 1.0, 4);
  for (double v : histogram_quantiles(empty, qs)) EXPECT_EQ(v, 0.0);
}

/// Property sweep: W1 is a metric (symmetry, identity, triangle-ish).
class WassersteinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WassersteinProperty, SymmetricAndNonNegative) {
  Rng rng(GetParam());
  std::vector<double> a, b;
  for (int i = 0; i < 40; ++i) a.push_back(rng.gaussian());
  for (int i = 0; i < 25; ++i) b.push_back(rng.gaussian(1.0, 2.0));
  const double ab = wasserstein1(a, b);
  const double ba = wasserstein1(b, a);
  EXPECT_NEAR(ab, ba, 1e-12);
  EXPECT_GE(ab, 0.0);
  EXPECT_NEAR(wasserstein1(a, a), 0.0, 1e-12);
}

TEST_P(WassersteinProperty, TranslationCovariance) {
  Rng rng(GetParam() ^ 0x55);
  std::vector<double> a, shifted;
  for (int i = 0; i < 30; ++i) {
    const double v = rng.uniform(-1, 1);
    a.push_back(v);
    shifted.push_back(v + 1.5);
  }
  EXPECT_NEAR(wasserstein1(a, shifted), 1.5, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WassersteinProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Json, ParsesEveryValueKind) {
  const Json doc = Json::parse(
      R"({"null":null,"t":true,"f":false,"int":-42,"big":18446744073709551615,)"
      R"("pi":3.5,"s":"hi","a":[1,2,3],"o":{"k":"v"}})");
  EXPECT_TRUE(doc.at("null").is_null());
  EXPECT_TRUE(doc.at("t").boolean());
  EXPECT_FALSE(doc.at("f").boolean());
  EXPECT_EQ(doc.at("int").i64(), -42);
  // 2^64 - 1 must round-trip exactly — the protocol carries RNG seeds.
  EXPECT_EQ(doc.at("big").u64(), 18446744073709551615ULL);
  EXPECT_DOUBLE_EQ(doc.at("pi").number(), 3.5);
  EXPECT_EQ(doc.at("s").str(), "hi");
  EXPECT_EQ(doc.at("a").array().size(), 3u);
  EXPECT_EQ(doc.at("o").at("k").str(), "v");
}

TEST(Json, DumpParseRoundTripIsByteStable) {
  // Insertion order is preserved, so dump(parse(dump(x))) == dump(x).
  Json json;
  json.set("seed", std::uint64_t{18446744073709551615ULL});
  json.set("neg", std::int64_t{-7});
  json.set("name", "synthetic_0");
  json.set("frac", 0.25);
  json.set("list", JsonArray{Json(1), Json("two"), Json(nullptr)});
  const std::string once = json.dump();
  EXPECT_EQ(Json::parse(once).dump(), once);
  EXPECT_EQ(Json::parse(once), json);
}

TEST(Json, EscapesAndUnescapesStrings) {
  Json json;
  json.set("s", std::string("line\n\ttab \"quoted\" back\\slash \x01"));
  const Json parsed = Json::parse(json.dump());
  EXPECT_EQ(parsed.at("s").str(), json.at("s").str());
  // \uXXXX escapes decode to UTF-8 (é, then 😀 as a surrogate pair).
  EXPECT_EQ(Json::parse("\"\\u00e9\\ud83d\\ude00\"").str(),
            "\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), JsonError);
  EXPECT_THROW(Json::parse("[1 2]"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("nul"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);  // trailing garbage
}

TEST(Json, TypedAccessorsEnforceExactness) {
  const Json doc = Json::parse(R"({"neg":-1,"frac":1.5,"three":3})");
  EXPECT_THROW((void)doc.at("neg").u64(), JsonError);
  EXPECT_THROW((void)doc.at("frac").u64(), JsonError);
  EXPECT_THROW((void)doc.at("frac").i64(), JsonError);
  EXPECT_EQ(doc.at("three").u64(), 3u);
  EXPECT_EQ(doc.at("three").i64(), 3);
  EXPECT_THROW((void)doc.at("missing"), JsonError);
  EXPECT_EQ(doc.find("missing"), nullptr);
  // Doubles outside the integer range must throw, not hit UB in the
  // float-to-int cast — these arrive straight off the daemon's wire.
  const Json huge = Json::parse(R"({"pos":1e300,"neg":-1e300})");
  EXPECT_THROW((void)huge.at("pos").u64(), JsonError);
  EXPECT_THROW((void)huge.at("pos").i64(), JsonError);
  EXPECT_THROW((void)huge.at("neg").i64(), JsonError);
}

}  // namespace
}  // namespace syn::util
