// Shared Phase-3 workload fixtures for the test suites and bench_micro —
// one definition, so the benches, the concurrency determinism tests and
// the mcts tests all measure the same workload.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/generator.hpp"
#include "core/postprocess.hpp"
#include "graph/adjacency.hpp"
#include "graph/algorithms.hpp"
#include "graph/dcg.hpp"
#include "graph/node_type.hpp"
#include "nn/matrix.hpp"
#include "rtl/generators.hpp"
#include "util/rng.hpp"

namespace syn::testsupport {

/// A deliberately redundant valid circuit: a random repair over
/// corpus-sampled attributes, leaving many unobservable register cones —
/// the canonical Phase 3 input.
inline graph::Graph redundant_circuit(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  core::AttrSampler sampler;
  sampler.fit(rtl::corpus_graphs({.seed = 3}));
  const graph::NodeAttrs attrs = sampler.sample(n, rng);
  graph::AdjacencyMatrix empty(n);
  nn::Matrix probs(n, n);
  for (auto& v : probs.data()) v = static_cast<float>(rng.uniform());
  return core::repair_to_valid(attrs, empty, probs, rng);
}

/// Cheap exact reward: fraction of registers that reach a primary output
/// (unweighted; monotone with the register sweep).
inline double observability_reward(const graph::Graph& g) {
  const auto mask = graph::observable_mask(g);
  std::size_t seen = 0, total = 0;
  for (graph::NodeId i = 0; i < g.num_nodes(); ++i) {
    if (graph::is_sequential(g.type(i))) {
      ++total;
      seen += mask[i];
    }
  }
  return total ? static_cast<double>(seen) / static_cast<double>(total) : 0.0;
}

}  // namespace syn::testsupport
