// Server tier: protocol round-trips, the fair-share JobScheduler, sink
// fan-out (TeeSink + StreamingManifestSink), the ShardedDiskSink
// lockfile, GenerationService progress/cancel, and the daemon end to end
// over a real Unix socket. Part of the TSan CI tier — the scheduler, the
// event logs and the per-connection threads are its concurrency surface.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/generator.hpp"
#include "core/postprocess.hpp"
#include "graph/adjacency.hpp"
#include "nn/matrix.hpp"
#include "rtl/generators.hpp"
#include "server/client.hpp"
#include "server/daemon.hpp"
#include "server/protocol.hpp"
#include "server/scheduler.hpp"
#include "server/stream_sink.hpp"
#include "service/dataset_sink.hpp"
#include "service/generation_service.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace syn {
namespace {

using server::ClientConnection;
using server::Daemon;
using server::DaemonConfig;
using server::FittedBackend;
using server::JobScheduler;
using server::JobSpec;
using server::JobState;
using server::Request;
using server::StreamingManifestSink;
using service::DesignRecord;
using service::GenerationService;
using service::MemorySink;
using service::ShardedDiskSink;
using service::TeeSink;
using util::Json;

// ---------------------------------------------------------------- protocol

TEST(Protocol, EveryRequestKindRoundTrips) {
  std::vector<Request> requests;
  {
    Request r;
    r.cmd = Request::Cmd::kSubmit;
    r.client = "alice";
    r.spec = {.count = 12,
              .seed = 18446744073709551615ULL,
              .backend = "graphrnn",
              .out = "/data/run1",
              .batch = 4,
              .threads = 2,
              .shard_size = 16,
              .queue = 8,
              .fresh = true,
              .synth_stats = false};
    requests.push_back(r);
  }
  {
    Request r;  // defaulted spec fields must survive the omission encoding
    r.cmd = Request::Cmd::kSubmit;
    r.spec = {.count = 1, .seed = 0};
    requests.push_back(r);
  }
  for (const auto cmd : {Request::Cmd::kStatus, Request::Cmd::kCancel,
                         Request::Cmd::kStream}) {
    Request r;
    r.cmd = cmd;
    r.id = "job-7";
    requests.push_back(r);
  }
  for (const auto filter : {server::StreamFilter::kRecords,
                            server::StreamFilter::kCheckpoints}) {
    Request r;  // non-default filters must survive the omission encoding
    r.cmd = Request::Cmd::kStream;
    r.id = "job-8";
    r.filter = filter;
    requests.push_back(r);
  }
  {
    Request r;
    r.cmd = Request::Cmd::kList;
    requests.push_back(r);
  }
  {
    Request r;
    r.cmd = Request::Cmd::kMetrics;
    requests.push_back(r);
  }
  {
    Request r;
    r.cmd = Request::Cmd::kPing;
    requests.push_back(r);
  }
  {
    Request r;
    r.cmd = Request::Cmd::kShutdown;
    r.drain = false;
    requests.push_back(r);
  }
  for (const Request& request : requests) {
    const std::string line = server::encode(request);
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
    EXPECT_EQ(server::parse_request(line), request) << line;
  }
}

TEST(Protocol, RejectsMalformedRequests) {
  EXPECT_THROW(server::parse_request("not json"), server::ProtocolError);
  EXPECT_THROW(server::parse_request("[1,2]"), server::ProtocolError);
  EXPECT_THROW(server::parse_request(R"({"cmd":"frobnicate"})"),
               server::ProtocolError);
  EXPECT_THROW(server::parse_request(R"({"cmd":"status"})"),
               server::ProtocolError);  // missing id
  EXPECT_THROW(server::parse_request(R"({"cmd":"status","id":""})"),
               server::ProtocolError);
  EXPECT_THROW(server::parse_request(R"({"cmd":"submit"})"),
               server::ProtocolError);  // missing spec
  EXPECT_THROW(
      server::parse_request(R"({"cmd":"submit","spec":{"seed":1}})"),
      server::ProtocolError);  // missing count
  EXPECT_THROW(
      server::parse_request(
          R"({"cmd":"submit","spec":{"count":0,"seed":1}})"),
      server::ProtocolError);
  EXPECT_THROW(
      server::parse_request(
          R"({"cmd":"submit","spec":{"count":"five","seed":1}})"),
      server::ProtocolError);  // wrong type reports as protocol error
  EXPECT_THROW(
      server::parse_request(R"({"cmd":"stream","id":"j","filter":"bogus"})"),
      server::ProtocolError);  // unknown stream filter
  EXPECT_THROW(server::stream_filter_from_string("Records"),
               server::ProtocolError);  // case-sensitive
}

TEST(Protocol, ResponsesCarryOkFlag) {
  EXPECT_TRUE(server::ok_response().at("ok").boolean());
  const Json error = server::error_response("boom");
  EXPECT_FALSE(error.at("ok").boolean());
  EXPECT_EQ(error.at("error").str(), "boom");
  EXPECT_EQ(error.find("code"), nullptr);  // generic errors carry no code
  const Json typed =
      server::error_response("full", server::kErrorCodeQuota);
  EXPECT_FALSE(typed.at("ok").boolean());
  EXPECT_EQ(typed.at("code").str(), "quota_exceeded");
}

// --------------------------------------------------------------- scheduler

JobScheduler::Options slots(std::size_t max_concurrent) {
  JobScheduler::Options options;
  options.max_concurrent = max_concurrent;
  return options;
}

TEST(Scheduler, RunsJobsAndReportsTerminalStates) {
  JobScheduler scheduler(slots(2));
  const std::string ok =
      scheduler.submit("c", [](const JobScheduler::Handle&) {});
  const std::string bad = scheduler.submit("c", [](const JobScheduler::Handle&) {
    throw std::runtime_error("exploded");
  });
  const std::string cancelled =
      scheduler.submit("c", [](const JobScheduler::Handle&) {
        throw service::CancelledError();
      });
  EXPECT_EQ(scheduler.wait(ok), JobState::kDone);
  EXPECT_EQ(scheduler.wait(bad), JobState::kFailed);
  EXPECT_EQ(scheduler.wait(cancelled), JobState::kCancelled);
  EXPECT_EQ(scheduler.info(bad).error, "exploded");
  EXPECT_EQ(scheduler.list().size(), 3u);
  EXPECT_THROW(scheduler.info("job-999"), std::out_of_range);
  EXPECT_THROW(scheduler.wait("nope"), std::out_of_range);
}

TEST(Scheduler, FairShareRoundRobinAcrossClients) {
  // One slot; alice floods 3 jobs before bob's 3 arrive. Starts must
  // interleave a-b-a-b-a-b (after alice's head job, which is already
  // running), not drain alice's queue first.
  JobScheduler scheduler(slots(1));
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::string> started;
  bool release_first = false;
  const auto body = [&](const std::string& label, bool hold) {
    return [&, label, hold](const JobScheduler::Handle&) {
      std::unique_lock<std::mutex> lock(mutex);
      started.push_back(label);
      // The head job parks until every submission is queued, so the
      // dispatch order of the remaining five is purely the scheduler's.
      if (hold) cv.wait(lock, [&] { return release_first; });
    };
  };
  scheduler.submit("alice", body("a1", true));
  scheduler.submit("alice", body("a2", false));
  scheduler.submit("alice", body("a3", false));
  scheduler.submit("bob", body("b1", false));
  scheduler.submit("bob", body("b2", false));
  const std::string last = scheduler.submit("bob", body("b3", false));
  {
    const std::lock_guard<std::mutex> lock(mutex);
    release_first = true;
  }
  cv.notify_all();
  scheduler.wait(last);
  scheduler.shutdown(true);
  const std::vector<std::string> expected{"a1", "b1", "a2", "b2", "a3", "b3"};
  EXPECT_EQ(started, expected);
}

TEST(Scheduler, CancelQueuedJobNeverRuns) {
  JobScheduler scheduler(slots(1));
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> second_ran{false};
  const std::string first =
      scheduler.submit("c", [&](const JobScheduler::Handle&) {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return release; });
      });
  const std::string second =
      scheduler.submit("c", [&](const JobScheduler::Handle&) {
        second_ran.store(true);
      });
  EXPECT_TRUE(scheduler.cancel(second));
  EXPECT_EQ(scheduler.info(second).state, JobState::kCancelled);
  EXPECT_FALSE(scheduler.cancel(second));  // already terminal
  {
    const std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  EXPECT_EQ(scheduler.wait(first), JobState::kDone);
  EXPECT_EQ(scheduler.wait(second), JobState::kCancelled);
  EXPECT_FALSE(second_ran.load());
}

TEST(Scheduler, CancelRunningJobTripsItsToken) {
  JobScheduler scheduler(slots(1));
  std::mutex mutex;
  std::condition_variable cv;
  bool running = false;
  const std::string id =
      scheduler.submit("c", [&](const JobScheduler::Handle& handle) {
        {
          const std::lock_guard<std::mutex> lock(mutex);
          running = true;
        }
        cv.notify_all();
        while (!handle.cancelled()) std::this_thread::yield();
        throw service::CancelledError();
      });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return running; });
  }
  EXPECT_TRUE(scheduler.cancel(id));
  EXPECT_EQ(scheduler.wait(id), JobState::kCancelled);
}

TEST(Scheduler, ShutdownDrainFinishesQueuedJobs) {
  JobScheduler scheduler(slots(1));
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) {
    scheduler.submit("c", [&](const JobScheduler::Handle&) {
      ran.fetch_add(1);
    });
  }
  scheduler.shutdown(true);
  EXPECT_EQ(ran.load(), 5);
  EXPECT_THROW(
      scheduler.submit("c", [](const JobScheduler::Handle&) {}),
      std::runtime_error);
}

TEST(Scheduler, ShutdownWithoutDrainCancelsQueuedJobs) {
  JobScheduler scheduler(slots(1));
  std::mutex mutex;
  std::condition_variable cv;
  bool running = false;
  std::atomic<int> ran{0};
  const std::string head =
      scheduler.submit("c", [&](const JobScheduler::Handle& handle) {
        {
          const std::lock_guard<std::mutex> lock(mutex);
          running = true;
        }
        cv.notify_all();
        while (!handle.cancelled()) std::this_thread::yield();
        throw service::CancelledError();
      });
  std::vector<std::string> queued;
  for (int i = 0; i < 3; ++i) {
    queued.push_back(scheduler.submit("c", [&](const JobScheduler::Handle&) {
      ran.fetch_add(1);
    }));
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return running; });
  }
  scheduler.shutdown(false);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(scheduler.info(head).state, JobState::kCancelled);
  for (const auto& id : queued) {
    EXPECT_EQ(scheduler.info(id).state, JobState::kCancelled);
  }
}

// ------------------------------------------------------------- sink fan-out

graph::Graph tiny_valid_graph(std::uint64_t seed) {
  core::AttrSampler sampler;
  sampler.fit({rtl::make_counter(4), rtl::make_fifo_ctrl(2)});
  util::Rng rng(seed);
  const auto attrs = sampler.sample(10, rng);
  graph::AdjacencyMatrix gini(attrs.size());
  nn::Matrix probs(attrs.size(), attrs.size());
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    for (std::size_t j = 0; j < attrs.size(); ++j) {
      if (i != j) gini.set(i, j, rng.bernoulli(0.05));
      probs.at(i, j) = static_cast<float>(rng.uniform());
    }
  }
  return core::repair_to_valid(attrs, gini, probs, rng);
}

TEST(TeeSink, FansOutToEverySinkAndResumesFromPrimary) {
  struct ResumingSink : MemorySink {
    [[nodiscard]] std::size_t resume_index() const override { return 3; }
  };
  ResumingSink primary;
  MemorySink mirror_a, mirror_b;
  TeeSink tee(primary);
  tee.add(mirror_a).add(mirror_b);

  EXPECT_EQ(tee.resume_index(), 3u);  // primary decides, mirrors don't veto

  DesignRecord record{.index = 3, .chain_seed = 9,
                      .graph = tiny_valid_graph(1)};
  record.graph.set_name("synthetic_3");
  tee.write(record);
  tee.checkpoint(4);
  tee.finalize({.generator = "Stub", .seed = 9, .count = 4});

  for (const MemorySink* sink :
       {static_cast<const MemorySink*>(&primary),
        static_cast<const MemorySink*>(&mirror_a),
        static_cast<const MemorySink*>(&mirror_b)}) {
    ASSERT_EQ(sink->records().size(), 1u);
    EXPECT_EQ(sink->records()[0].index, 3u);
    EXPECT_EQ(sink->checkpointed(), 4u);
    EXPECT_TRUE(sink->finalized());
    EXPECT_EQ(sink->summary().generator, "Stub");
  }
}

TEST(StreamingManifestSink, EmitsOneParsableEventPerRecord) {
  std::vector<std::string> lines;
  StreamingManifestSink sink(
      {.job_id = "job-9", .shard_size = 2, .with_synth_stats = false},
      [&](std::string line) { lines.push_back(std::move(line)); });

  for (std::size_t i = 0; i < 3; ++i) {
    DesignRecord record{.index = i, .chain_seed = 100 + i,
                        .graph = tiny_valid_graph(i)};
    record.graph.set_name("synthetic_" + std::to_string(i));
    sink.write(record);
  }
  sink.checkpoint(3);
  sink.finalize({.generator = "Stub", .seed = 5, .count = 3});

  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(sink.records_emitted(), 3u);
  const Json first = Json::parse(lines[0]);
  EXPECT_EQ(first.at("event").str(), "record");
  EXPECT_EQ(first.at("id").str(), "job-9");
  EXPECT_EQ(first.at("index").u64(), 0u);
  EXPECT_EQ(first.at("file").str(), "shard_0000/synthetic_0.v");
  EXPECT_EQ(first.at("chain_seed").u64(), 100u);
  EXPECT_EQ(first.find("gates"), nullptr);  // synth stats disabled
  EXPECT_EQ(Json::parse(lines[2]).at("file").str(),
            "shard_0001/synthetic_2.v");
  EXPECT_EQ(Json::parse(lines[3]).at("event").str(), "checkpoint");
  EXPECT_EQ(Json::parse(lines[3]).at("next").u64(), 3u);
  EXPECT_EQ(Json::parse(lines[4]).at("event").str(), "summary");
}

// ----------------------------------------------------------------- lockfile

class ServerDiskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("syn_server_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(ServerDiskTest, LockfileRejectsSecondSinkOnSameDir) {
  ShardedDiskSink first({.dir = dir_, .seed = 1, .with_synth_stats = false});
  try {
    ShardedDiskSink second(
        {.dir = dir_, .seed = 1, .with_synth_stats = false});
    FAIL() << "second sink on a locked dir must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("locked by running process"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ServerDiskTest, LockfileReleasesOnDestructionAndBreaksIfStale) {
  {
    ShardedDiskSink sink({.dir = dir_, .seed = 1, .with_synth_stats = false});
    EXPECT_TRUE(std::filesystem::exists(dir_ / ".lock"));
  }
  EXPECT_FALSE(std::filesystem::exists(dir_ / ".lock"));

  // A stale lock (dead/unparsable owner) is broken silently.
  std::filesystem::create_directories(dir_);
  std::ofstream(dir_ / ".lock") << "0\n";
  ShardedDiskSink sink({.dir = dir_, .seed = 1, .with_synth_stats = false});
  std::ifstream lock(dir_ / ".lock");
  long long pid = 0;
  lock >> pid;
  EXPECT_GT(pid, 0);  // rewritten with our live pid
}

// -------------------------------------------- service progress + cancel

/// Cheap deterministic model (same construction as test_service's stub,
/// plus a bounded retry: repair_to_valid rejects the occasional skeleton
/// at daemon-test design counts, and redrawing from the same rng stream
/// keeps the output a pure function of (attrs, seed)).
class StubModel : public core::GeneratorModel {
 public:
  void fit(const std::vector<graph::Graph>&) override {}
  graph::Graph generate(const graph::NodeAttrs& attrs,
                        util::Rng& rng) override {
    const std::size_t n = attrs.size();
    for (int attempt = 0;; ++attempt) {
      graph::AdjacencyMatrix gini(n);
      nn::Matrix probs(n, n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (i != j) gini.set(i, j, rng.bernoulli(0.05));
          probs.at(i, j) = static_cast<float>(rng.uniform());
        }
      }
      try {
        return core::repair_to_valid(attrs, gini, probs, rng);
      } catch (const std::exception&) {
        if (attempt >= 20) throw;
      }
    }
  }
  [[nodiscard]] std::string name() const override { return "Stub"; }
};

FittedBackend stub_backend() {
  auto sampler = std::make_shared<core::AttrSampler>();
  sampler->fit({rtl::make_counter(4), rtl::make_fifo_ctrl(2),
                rtl::make_fsm(2, 2)});
  return {std::make_shared<StubModel>(),
          [sampler](std::size_t i, util::Rng& rng) {
            return sampler->sample(10 + 2 * (i % 3), rng);
          }};
}

service::GenerationJob stub_job(std::size_t count, std::uint64_t seed,
                                const FittedBackend& backend) {
  return {.count = count, .seed = seed, .attrs = backend.attrs};
}

TEST(GenerationServiceProgress, CountersTrackWritesAndGroups) {
  const auto backend = stub_backend();
  StubModel model;
  GenerationService svc(model, {.batch = {.batch = 3, .threads = 1},
                                .group = 3});
  EXPECT_EQ(svc.designs_written(), 0u);
  MemorySink sink;
  svc.run(stub_job(8, 21, backend), sink);
  EXPECT_EQ(svc.designs_written(), 8u);
  EXPECT_EQ(svc.groups_pumped(), 3u);  // 3 + 3 + 2
  // Counters reset per run.
  MemorySink sink2;
  svc.run(stub_job(2, 22, backend), sink2);
  EXPECT_EQ(svc.designs_written(), 2u);
  EXPECT_EQ(svc.groups_pumped(), 1u);
}

TEST(GenerationServiceProgress, CancelTokenStopsBetweenGroupsAndResumes) {
  const auto backend = stub_backend();
  const std::uint64_t seed = 33;
  std::atomic<bool> cancel{false};

  // A sink that trips the token after the first write: the producer
  // notices at the next group boundary, drains, and throws.
  struct TrippingSink : MemorySink {
    std::atomic<bool>* cancel = nullptr;
    void write(const DesignRecord& record) override {
      MemorySink::write(record);
      cancel->store(true);
    }
  };
  TrippingSink sink;
  sink.cancel = &cancel;
  StubModel model;
  GenerationService svc(model, {.batch = {.batch = 2, .threads = 1},
                                .group = 2, .queue_capacity = 1});
  auto job = stub_job(12, seed, backend);
  job.cancel = &cancel;
  EXPECT_THROW((void)svc.run(job, sink), service::CancelledError);
  EXPECT_FALSE(sink.finalized());
  // Every record that made it into the queue before the stop landed.
  EXPECT_GT(sink.records().size(), 0u);
  EXPECT_LT(sink.records().size(), 12u);

  // The cancelled run is a resumable prefix: finishing from its
  // checkpoint yields the same designs a fresh uncancelled run produces.
  struct PrefixSink : MemorySink {
    std::size_t resume = 0;
    [[nodiscard]] std::size_t resume_index() const override { return resume; }
  };
  PrefixSink rest;
  rest.resume = sink.checkpointed();
  StubModel model2;
  GenerationService svc2(model2, {.batch = {.batch = 2, .threads = 1}});
  svc2.run(stub_job(12, seed, backend), rest);

  MemorySink fresh;
  StubModel model3;
  GenerationService svc3(model3, {.batch = {.batch = 4, .threads = 2}});
  svc3.run(stub_job(12, seed, backend), fresh);
  ASSERT_EQ(rest.records().size(), 12u - rest.resume);
  for (const auto& record : rest.records()) {
    EXPECT_EQ(record.graph, fresh.records()[record.index].graph)
        << "design " << record.index;
  }
}

// ------------------------------------------------------------------ daemon

class DaemonTest : public ServerDiskTest {
 protected:
  std::filesystem::path socket_path() const {
    // Unix socket paths are limited to ~107 bytes; keep it short.
    return std::filesystem::path(::testing::TempDir()) /
           ("synd_" + std::to_string(::getpid()) + "_" +
            std::to_string(socket_counter_++) + ".sock");
  }

  DaemonConfig stub_config(const std::filesystem::path& socket) const {
    DaemonConfig config;
    config.socket_path = socket;
    config.max_concurrent = 2;
    config.factory = [](const std::string& name) {
      if (name != "stub") {
        throw std::invalid_argument("unknown backend \"" + name + "\"");
      }
      return stub_backend();
    };
    return config;
  }

  JobSpec stub_spec(std::size_t count, std::uint64_t seed) const {
    JobSpec spec;
    spec.count = count;
    spec.seed = seed;
    spec.backend = "stub";
    spec.out = dir_;
    spec.batch = 2;
    spec.threads = 1;
    spec.shard_size = 2;
    spec.queue = 4;
    spec.synth_stats = false;
    return spec;
  }

  static std::string read_file(const std::filesystem::path& path) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  mutable int socket_counter_ = 0;
};

/// start() + serve()-on-a-thread wrapper so tests tear down cleanly.
class RunningDaemon {
 public:
  explicit RunningDaemon(const DaemonConfig& config) : daemon_(config) {
    daemon_.start();
    thread_ = std::thread([this] { daemon_.serve(); });
  }
  ~RunningDaemon() { stop(true); }
  void stop(bool drain) {
    if (thread_.joinable()) {
      daemon_.request_stop(drain);
      thread_.join();
    }
  }
  Daemon& operator*() { return daemon_; }

 private:
  Daemon daemon_;
  std::thread thread_;
};

TEST_F(DaemonTest, SubmitStreamStatusEndToEnd) {
  const auto socket = socket_path();
  RunningDaemon daemon(stub_config(socket));

  auto conn = ClientConnection::connect_unix(socket);
  const std::string id = conn.submit(stub_spec(7, 11), "tester");
  EXPECT_EQ(id, "job-1");

  // STREAM replays + follows to the terminal event.
  std::vector<Json> events;
  const std::string state =
      conn.stream(id, [&](const Json& event) { events.push_back(event); });
  EXPECT_EQ(state, "done");
  std::size_t records = 0;
  for (const Json& event : events) {
    records += event.at("event").str() == "record";
  }
  EXPECT_EQ(records, 7u);

  // STATUS after completion reports frozen progress counters.
  const Json job = conn.status(id);
  EXPECT_EQ(job.at("state").str(), "done");
  EXPECT_EQ(job.at("produced").u64(), 7u);
  EXPECT_EQ(job.at("written").u64(), 7u);
  EXPECT_EQ(job.at("count").u64(), 7u);
  EXPECT_EQ(job.at("backend").str(), "stub");

  // The dataset on disk matches a direct service run byte for byte.
  const auto direct_dir = dir_.parent_path() /
                          (dir_.filename().string() + "_direct");
  std::filesystem::remove_all(direct_dir);
  {
    const auto backend = stub_backend();
    StubModel model;
    ShardedDiskSink sink({.dir = direct_dir, .seed = 11, .shard_size = 2,
                          .with_synth_stats = false});
    GenerationService svc(model, {.batch = {.batch = 2, .threads = 1},
                                  .queue_capacity = 4});
    svc.run(stub_job(7, 11, backend), sink);
  }
  EXPECT_EQ(read_file(dir_ / "manifest.jsonl"),
            read_file(direct_dir / "manifest.jsonl"));
  for (int i = 0; i < 7; ++i) {
    const auto rel =
        std::filesystem::path("shard_000" + std::to_string(i / 2)) /
        ("synthetic_" + std::to_string(i) + ".v");
    EXPECT_EQ(read_file(dir_ / rel), read_file(direct_dir / rel)) << rel;
  }
  std::filesystem::remove_all(direct_dir);

  // Unknown ids are protocol errors, not crashes.
  EXPECT_THROW(conn.status("job-99"), std::runtime_error);
  EXPECT_THROW(conn.cancel("job-99"), std::runtime_error);
}

TEST_F(DaemonTest, RestartedDaemonResumesFromCheckpoint) {
  const auto socket = socket_path();
  {
    RunningDaemon daemon(stub_config(socket));
    auto conn = ClientConnection::connect_unix(socket);
    const std::string id = conn.submit(stub_spec(3, 29));
    EXPECT_EQ(conn.stream(id, nullptr), "done");
  }  // daemon fully torn down — socket gone, dataset checkpointed at 3

  // A "restarted" daemon on the same socket path + output dir picks up
  // the checkpoint: extending to 8 produces only designs 3..7.
  RunningDaemon daemon(stub_config(socket));
  auto conn = ClientConnection::connect_unix(socket);
  const std::string id = conn.submit(stub_spec(8, 29));
  EXPECT_EQ(conn.stream(id, nullptr), "done");
  const Json job = conn.status(id);
  EXPECT_EQ(job.at("produced").u64(), 8u);  // overall dataset progress
  EXPECT_EQ(job.at("written").u64(), 5u);   // this run wrote 5

  // Byte-identical to one uninterrupted direct run of 8.
  const auto direct_dir =
      dir_.parent_path() / (dir_.filename().string() + "_direct");
  std::filesystem::remove_all(direct_dir);
  {
    const auto backend = stub_backend();
    StubModel model;
    ShardedDiskSink sink({.dir = direct_dir, .seed = 29, .shard_size = 2,
                          .with_synth_stats = false});
    GenerationService svc(model, {.batch = {.batch = 3, .threads = 2}});
    svc.run(stub_job(8, 29, backend), sink);
  }
  EXPECT_EQ(read_file(dir_ / "manifest.jsonl"),
            read_file(direct_dir / "manifest.jsonl"));
  for (int i = 0; i < 8; ++i) {
    const auto rel =
        std::filesystem::path("shard_000" + std::to_string(i / 2)) /
        ("synthetic_" + std::to_string(i) + ".v");
    EXPECT_EQ(read_file(dir_ / rel), read_file(direct_dir / rel)) << rel;
  }
  std::filesystem::remove_all(direct_dir);
}

TEST_F(DaemonTest, TwoClientsOnSeparateConnectionsBothComplete) {
  const auto socket = socket_path();
  RunningDaemon daemon(stub_config(socket));

  const auto dir_a = dir_ / "a";
  const auto dir_b = dir_ / "b";
  auto spec_a = stub_spec(4, 41);
  spec_a.out = dir_a;
  auto spec_b = stub_spec(4, 42);
  spec_b.out = dir_b;

  auto conn_a = ClientConnection::connect_unix(socket);
  auto conn_b = ClientConnection::connect_unix(socket);
  const std::string id_a = conn_a.submit(spec_a, "alice");
  const std::string id_b = conn_b.submit(spec_b, "bob");
  // Tail concurrently from both connections.
  std::string state_b;
  std::thread tail_b([&] { state_b = conn_b.stream(id_b, nullptr); });
  const std::string state_a = conn_a.stream(id_a, nullptr);
  tail_b.join();
  EXPECT_EQ(state_a, "done");
  EXPECT_EQ(state_b, "done");
  EXPECT_TRUE(std::filesystem::exists(dir_a / "manifest.jsonl"));
  EXPECT_TRUE(std::filesystem::exists(dir_b / "manifest.jsonl"));
  const Json job_a = conn_b.status(id_a);  // any connection may ask
  EXPECT_EQ(job_a.at("client").str(), "alice");
}

TEST_F(DaemonTest, ConcurrentJobsOnSameOutputDirFailFastViaLockfile) {
  const auto socket = socket_path();
  auto config = stub_config(socket);
  config.max_concurrent = 2;  // both jobs genuinely run at once
  RunningDaemon daemon(config);

  auto conn = ClientConnection::connect_unix(socket);
  // Same output dir; one must win, the other must fail on the lockfile.
  const std::string first = conn.submit(stub_spec(300, 51), "alice");
  const std::string second = conn.submit(stub_spec(300, 51), "bob");
  const std::string state_first = conn.stream(first, nullptr);
  const std::string state_second = conn.stream(second, nullptr);
  const bool first_won = state_first == "done";
  EXPECT_EQ(state_first == "done" || state_second == "done", true);
  const std::string& loser = first_won ? second : first;
  const Json job = conn.status(loser);
  EXPECT_EQ(job.at("state").str(), "failed");
  EXPECT_NE(job.at("error").str().find("locked by running process"),
            std::string::npos)
      << job.dump();
}

TEST_F(DaemonTest, CancelQueuedJobEndsItsStream) {
  const auto socket = socket_path();
  auto config = stub_config(socket);
  config.max_concurrent = 1;
  RunningDaemon daemon(config);

  auto conn = ClientConnection::connect_unix(socket);
  // Big head job holds the single slot while we cancel the queued one.
  const std::string head = conn.submit(stub_spec(400, 61), "alice");
  auto queued_spec = stub_spec(4, 62);
  queued_spec.out = dir_ / "queued";
  const std::string queued = conn.submit(queued_spec, "alice");
  const Json cancel = conn.cancel(queued);
  EXPECT_EQ(cancel.at("state").str(), "cancelled");
  // Its stream terminates immediately with a cancelled end event.
  EXPECT_EQ(conn.stream(queued, nullptr), "cancelled");
  EXPECT_FALSE(std::filesystem::exists(dir_ / "queued"));
  // Cancel the head too so teardown does not wait out 400 designs.
  conn.cancel(head);
  const Json job = conn.status(head);
  EXPECT_TRUE(job.at("state").str() == "running" ||
              job.at("state").str() == "cancelled");
  daemon.stop(false);
}

TEST_F(DaemonTest, UnknownBackendFailsTheJobWithClearError) {
  const auto socket = socket_path();
  RunningDaemon daemon(stub_config(socket));
  auto conn = ClientConnection::connect_unix(socket);
  auto spec = stub_spec(2, 71);
  spec.backend = "nope";
  const std::string id = conn.submit(spec);
  EXPECT_EQ(conn.stream(id, nullptr), "failed");
  const Json job = conn.status(id);
  EXPECT_NE(job.at("error").str().find("nope"), std::string::npos);
}

TEST_F(DaemonTest, MalformedLinesGetErrorResponsesNotDisconnects) {
  const auto socket = socket_path();
  RunningDaemon daemon(stub_config(socket));
  auto conn = ClientConnection::connect_unix(socket);
  conn.send_line("this is not json");
  auto reply = conn.recv_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(Json::parse(*reply).at("ok").boolean());
  // The connection survives and still serves real requests.
  conn.send_line(R"({"cmd":"ping"})");
  reply = conn.recv_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(Json::parse(*reply).at("ok").boolean());
}

}  // namespace
}  // namespace syn
