// Tests for the structural-statistics suite (Table II metrics) and the
// Wasserstein/histogram utilities.
#include <gtest/gtest.h>

#include "graph/dcg.hpp"
#include "rtl/builder.hpp"
#include "rtl/generators.hpp"
#include "stats/metrics.hpp"
#include "util/histogram.hpp"

namespace syn::stats {
namespace {

using graph::Graph;
using graph::NodeType;
using rtl::Builder;

/// K4: complete directed graph on 4 nodes (as far as slots allow).
Graph triangle_graph() {
  // 3 two-input nodes wired pairwise through a register to stay valid is
  // overkill here: stats functions do not require validity, so build the
  // shape directly.
  Graph g("tri");
  const auto a = g.add_node(NodeType::kAnd, 1);
  const auto b = g.add_node(NodeType::kAnd, 1);
  const auto c = g.add_node(NodeType::kAnd, 1);
  g.set_fanin(b, 0, a);
  g.set_fanin(c, 0, b);
  g.set_fanin(c, 1, a);
  return g;
}

TEST(Wasserstein, IdenticalDistributionsZero) {
  const std::vector<double> a{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(util::wasserstein1(a, a), 0.0);
}

TEST(Wasserstein, ShiftEqualsDistance) {
  const std::vector<double> a{0, 0, 0};
  const std::vector<double> b{2, 2, 2};
  EXPECT_DOUBLE_EQ(util::wasserstein1(a, b), 2.0);
}

TEST(Wasserstein, HandlesUnequalSampleSizes) {
  const std::vector<double> a{0.0, 1.0};
  const std::vector<double> b{0.0, 0.5, 1.0};
  // W1 between these empirical CDFs is 1/6.
  EXPECT_NEAR(util::wasserstein1(a, b), 1.0 / 6.0, 1e-9);
}

TEST(Histogram, BinsAndClamping) {
  util::Histogram h(0.0, 10.0, 5);
  h.add(-1.0);  // clamps into bin 0
  h.add(0.5);
  h.add(9.9);
  h.add(100.0);  // clamps into last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Metrics, OutDegreeSamples) {
  const Graph g = triangle_graph();
  const auto d = out_degree_samples(g);
  // a drives b and c (2), b drives c (1), c drives nothing (0).
  EXPECT_EQ(d, (std::vector<double>{2, 1, 0}));
}

TEST(Metrics, TriangleCountOnKnownShapes) {
  EXPECT_DOUBLE_EQ(triangle_count(triangle_graph()), 1.0);
  // A pure chain has no triangle.
  Graph chain("c");
  const auto x = chain.add_node(NodeType::kNot, 1);
  const auto y = chain.add_node(NodeType::kNot, 1);
  const auto z = chain.add_node(NodeType::kNot, 1);
  chain.set_fanin(y, 0, x);
  chain.set_fanin(z, 0, y);
  EXPECT_DOUBLE_EQ(triangle_count(chain), 0.0);
}

TEST(Metrics, ClusteringCoefficientOfTriangle) {
  const auto c = clustering_samples(triangle_graph());
  for (double v : c) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Metrics, OrbitCountsMatchBruteForceOnSmallGraph) {
  const Graph g = rtl::make_counter(4);
  const auto orbits = orbit_samples(g);
  // Brute force: enumerate all 4-subsets, keep connected ones.
  const std::size_t n = g.num_nodes();
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (const auto& [a, b] : g.edges()) {
    adj[a][b] = adj[b][a] = true;
  }
  std::vector<double> expected(n, 0.0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      for (std::size_t c = b + 1; c < n; ++c) {
        for (std::size_t d = c + 1; d < n; ++d) {
          const std::size_t ids[4] = {a, b, c, d};
          // connectivity of the induced subgraph via tiny DFS
          bool seen[4] = {true, false, false, false};
          bool grew = true;
          while (grew) {
            grew = false;
            for (int u = 0; u < 4; ++u) {
              if (!seen[u]) continue;
              for (int v = 0; v < 4; ++v) {
                if (!seen[v] && adj[ids[u]][ids[v]]) {
                  seen[v] = true;
                  grew = true;
                }
              }
            }
          }
          if (seen[0] && seen[1] && seen[2] && seen[3]) {
            for (auto id : ids) expected[id] += 1.0;
          }
        }
      }
    }
  }
  ASSERT_EQ(orbits.size(), expected.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(orbits[i], expected[i]) << "node " << i;
  }
}

TEST(Metrics, HomophilyHigherForTypeClusteredGraph) {
  // Graph A: edges connect same-type nodes; Graph B: edges cross types.
  Graph clustered("a");
  for (int i = 0; i < 4; ++i) clustered.add_node(NodeType::kAnd, 1);
  for (int i = 0; i < 4; ++i) clustered.add_node(NodeType::kOr, 1);
  clustered.set_fanin(1, 0, 0);
  clustered.set_fanin(2, 0, 1);
  clustered.set_fanin(3, 0, 2);
  clustered.set_fanin(5, 0, 4);
  clustered.set_fanin(6, 0, 5);
  clustered.set_fanin(7, 0, 6);

  Graph crossed("b");
  for (int i = 0; i < 4; ++i) {
    crossed.add_node(NodeType::kAnd, 1);
    crossed.add_node(NodeType::kOr, 1);
  }
  crossed.set_fanin(1, 0, 0);
  crossed.set_fanin(2, 0, 1);
  crossed.set_fanin(3, 0, 2);
  crossed.set_fanin(4, 0, 3);
  crossed.set_fanin(5, 0, 4);
  crossed.set_fanin(6, 0, 5);
  crossed.set_fanin(7, 0, 6);

  EXPECT_GT(homophily(clustered, false), homophily(crossed, false));
}

TEST(Metrics, CompareStructureSelfSimilarityIsNearPerfect) {
  const Graph g = rtl::make_fifo_ctrl(4);
  const auto cmp = compare_structure(g, {g});
  EXPECT_NEAR(cmp.w1_out_degree, 0.0, 1e-9);
  EXPECT_NEAR(cmp.w1_cluster, 0.0, 1e-9);
  EXPECT_NEAR(cmp.w1_orbit, 0.0, 1e-9);
  EXPECT_NEAR(cmp.ratio_triangle, 1.0, 1e-9);
  EXPECT_NEAR(cmp.ratio_h1, 1.0, 1e-9);
  EXPECT_NEAR(cmp.ratio_h2, 1.0, 1e-9);
}

TEST(Metrics, CompareStructureDetectsDissimilarity) {
  const Graph real = rtl::make_fifo_ctrl(4);
  // A long chain looks nothing like a FIFO controller.
  Builder b("chain");
  auto prev = b.input(1);
  for (int i = 0; i < 40; ++i) prev = b.not_(prev);
  b.output(prev);
  const auto cmp = compare_structure(real, {b.take()});
  EXPECT_GT(cmp.w1_out_degree + cmp.w1_cluster + cmp.w1_orbit, 0.1);
}

}  // namespace
}  // namespace syn::stats
