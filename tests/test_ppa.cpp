// Tests for STA, PPA labeling, the regressors and the Table III harness.
#include <gtest/gtest.h>

#include <cmath>

#include "ppa/experiment.hpp"
#include "ppa/features.hpp"
#include "ppa/labeler.hpp"
#include "ppa/metrics.hpp"
#include "ppa/models.hpp"
#include "rtl/builder.hpp"
#include "rtl/generators.hpp"
#include "sta/sta.hpp"
#include "synth/synthesizer.hpp"
#include "util/rng.hpp"

namespace syn::ppa {
namespace {

using graph::Graph;
using rtl::Builder;

TEST(Sta, ShortPipelineMeetsSlowClock) {
  const auto result = synth::synthesize(rtl::make_shift_register(4, 4));
  const auto timing = sta::analyze(result.netlist, {.clock_period_ns = 5.0});
  EXPECT_GT(timing.endpoints, 0u);
  EXPECT_EQ(timing.violated_endpoints, 0u);
  EXPECT_GT(timing.wns, 0.0);
  EXPECT_DOUBLE_EQ(timing.tns, 0.0);
}

TEST(Sta, WideMultiplierViolatesFastClock) {
  Builder b("mul");
  const auto x = b.input(16);
  const auto y = b.input(16);
  const auto r = b.reg(16);
  b.drive_reg(r, b.mul(x, y));
  b.output(r);
  const auto result = synth::synthesize(b.take());
  const auto timing = sta::analyze(result.netlist, {.clock_period_ns = 0.5});
  EXPECT_GT(timing.violated_endpoints, 0u);
  EXPECT_LT(timing.wns, 0.0);
  EXPECT_LT(timing.tns, timing.wns - 1e-12);  // TNS at least as negative
  EXPECT_LT(timing.tns_per_violation(), 0.0);
}

TEST(Sta, DelayScaleMonotone) {
  const auto result = synth::synthesize(rtl::make_alu(12));
  const auto fast = sta::analyze(result.netlist,
                                 {.clock_period_ns = 1.0, .delay_scale = 0.7});
  const auto slow = sta::analyze(result.netlist,
                                 {.clock_period_ns = 1.0, .delay_scale = 1.3});
  EXPECT_GT(fast.wns, slow.wns);
}

TEST(Sta, RegisterSlackCountMatchesDffs) {
  const auto result = synth::synthesize(rtl::make_counter(8));
  const auto timing = sta::analyze(result.netlist, {.clock_period_ns = 2.0});
  EXPECT_EQ(timing.register_slacks.size(), result.netlist.num_dffs());
}

TEST(Labeler, BiggerDesignHasBiggerArea) {
  const auto small = label_design(rtl::make_alu(6));
  const auto large = label_design(rtl::make_alu(24));
  EXPECT_GT(large.area, small.area);
  EXPECT_LT(large.wns, small.wns);  // wider ALU has longer paths
}

TEST(Features, DimensionAndDeterminism) {
  const Graph g = rtl::make_uart_tx(8);
  const auto f1 = design_features(g);
  const auto f2 = design_features(g);
  EXPECT_EQ(f1.size(), kDesignFeatureDim);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(design_feature_names().size(), kDesignFeatureDim);
}

TEST(Metrics, PearsonPerfectAndInverse) {
  const std::vector<double> y{1, 2, 3, 4};
  EXPECT_NEAR(pearson_r(y, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson_r(y, {4, 3, 2, 1}), -1.0, 1e-12);
  EXPECT_TRUE(std::isnan(pearson_r(y, {2, 2, 2, 2})));  // "NA" case
}

TEST(Metrics, MapeAndRrse) {
  const std::vector<double> truth{10, 20};
  const std::vector<double> pred{11, 18};
  EXPECT_NEAR(mape(truth, pred), (0.1 + 0.1) / 2.0, 1e-12);
  // RRSE of predicting the mean is exactly 1.
  const std::vector<double> mean_pred{15, 15};
  EXPECT_NEAR(rrse(truth, mean_pred), 1.0, 1e-12);
}

TEST(Ridge, RecoversLinearRelationship) {
  util::Rng rng(71);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 60; ++i) {
    const double a = rng.gaussian(), b = rng.gaussian();
    x.push_back({a, b});
    y.push_back(3.0 * a - 2.0 * b + 5.0 + 0.01 * rng.gaussian());
  }
  RidgeRegression ridge(0.01);
  ridge.fit(x, y);
  EXPECT_NEAR(ridge.predict({1.0, 1.0}), 6.0, 0.2);
  EXPECT_NEAR(ridge.predict({0.0, 0.0}), 5.0, 0.2);
}

TEST(Forest, FitsNonlinearFunction) {
  util::Rng rng(72);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-2.0, 2.0);
    x.push_back({a, rng.uniform(-1.0, 1.0)});
    y.push_back(a * a);  // depends only on feature 0, nonlinearly
  }
  RandomForest forest({.trees = 40, .max_depth = 6, .seed = 5});
  forest.fit(x, y);
  double err = 0.0;
  for (double a = -1.5; a <= 1.5; a += 0.5) {
    err += std::abs(forest.predict({a, 0.0}) - a * a);
  }
  EXPECT_LT(err / 7.0, 0.4);
}

// The fused batch paths must be bitwise-equal to the scalar loops (same
// per-row accumulation order); PPA labeling routes through them.
TEST(Regressors, PredictBatchBitwiseEqualsScalarLoop) {
  util::Rng rng(73);
  std::vector<std::vector<double>> x_train, x_test;
  std::vector<double> y;
  for (int i = 0; i < 80; ++i) {
    const double a = rng.gaussian(), b = rng.gaussian(), c = rng.gaussian();
    x_train.push_back({a, b, c});
    y.push_back(2.0 * a - b + 0.5 * c * c);
  }
  for (int i = 0; i < 33; ++i) {  // odd batch size
    x_test.push_back({rng.gaussian(), rng.gaussian(), rng.gaussian()});
  }

  RidgeRegression ridge(0.1);
  ridge.fit(x_train, y);
  RandomForest forest({.trees = 25, .max_depth = 5, .seed = 13});
  forest.fit(x_train, y);

  for (const Regressor* model :
       {static_cast<const Regressor*>(&ridge),
        static_cast<const Regressor*>(&forest)}) {
    const auto batch = model->predict_batch(x_test);
    ASSERT_EQ(batch.size(), x_test.size());
    for (std::size_t i = 0; i < x_test.size(); ++i) {
      EXPECT_EQ(batch[i], model->predict(x_test[i])) << "row " << i;
    }
    EXPECT_TRUE(model->predict_batch({}).empty());
  }
}

TEST(Forest, DeterministicForFixedSeed) {
  std::vector<std::vector<double>> x{{1}, {2}, {3}, {4}, {5}, {6}};
  std::vector<double> y{1, 4, 9, 16, 25, 36};
  RandomForest f1({.trees = 10, .seed = 9});
  RandomForest f2({.trees = 10, .seed = 9});
  f1.fit(x, y);
  f2.fit(x, y);
  EXPECT_DOUBLE_EQ(f1.predict({3.5}), f2.predict({3.5}));
}

TEST(Forest, RejectsMisuse) {
  RandomForest forest;
  EXPECT_THROW((void)forest.predict({1.0}), std::logic_error);
  EXPECT_THROW(forest.fit({}, {}), std::invalid_argument);
}

TEST(Experiment, MoreRealTrainingDataHelps) {
  // Sanity check of the harness itself: training on 12 designs should not
  // be worse than training on 3 for area prediction on held-out designs.
  const auto corpus = rtl::corpus_graphs({.seed = 8});
  std::vector<Graph> train_small(corpus.begin(), corpus.begin() + 3);
  std::vector<Graph> train_large(corpus.begin(), corpus.begin() + 12);
  std::vector<Graph> test(corpus.begin() + 15, corpus.end());
  const auto small = run_ppa_experiment(train_small, {}, test);
  const auto large = run_ppa_experiment(train_large, {}, test);
  EXPECT_LE(large.targets[3].rrse, small.targets[3].rrse * 1.5);
}

TEST(Experiment, ReportsAllFourTargets) {
  const auto corpus = rtl::corpus_graphs({.seed = 8});
  std::vector<Graph> train(corpus.begin(), corpus.begin() + 8);
  std::vector<Graph> test(corpus.begin() + 8, corpus.begin() + 14);
  const auto result = run_ppa_experiment(train, {}, test);
  for (const auto& scores : result.targets) {
    EXPECT_GE(scores.mape, 0.0);
    EXPECT_GE(scores.rrse, 0.0);
  }
}

}  // namespace
}  // namespace syn::ppa
