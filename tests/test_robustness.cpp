// Robustness and edge-case coverage: parser resilience against mangled
// input, numerical edge cases in the nn substrate, boundary conditions of
// the graph IR and pipeline components.
#include <gtest/gtest.h>

#include <cmath>

#include "core/generator.hpp"
#include "core/postprocess.hpp"
#include "graph/adjacency.hpp"
#include "graph/algorithms.hpp"
#include "graph/validity.hpp"
#include "nn/optim.hpp"
#include "nn/tensor.hpp"
#include "rtl/builder.hpp"
#include "rtl/generators.hpp"
#include "rtl/verilog.hpp"
#include "synth/synthesizer.hpp"
#include "util/rng.hpp"

namespace syn {
namespace {

using graph::Graph;
using graph::NodeType;
using rtl::Builder;

// --- Verilog parser resilience ----------------------------------------------

class ParserRejectionTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRejectionTest, MalformedModuleRejected) {
  EXPECT_THROW(rtl::from_verilog(GetParam()), rtl::VerilogParseError);
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, ParserRejectionTest,
    ::testing::Values(
        "",                                        // empty
        "module m(clk);",                          // no endmodule, no body
        "module m(clk); wire [3:0] w0 = ; endmodule",   // missing RHS
        "module m(clk); wire [3:0] w0 = w1 w2; endmodule",  // missing op
        "module m(clk); input [3:0] in5; endmodule",  // non-dense ids
        "module m(clk); reg [3:0] w0; endmodule",  // reg never driven
        "module m(clk); wire [3:0] w0 = q9 + q8; endmodule"));  // bad names

TEST(Parser, TruncatedRealModuleRejected) {
  const std::string full = rtl::to_verilog(rtl::make_counter(8));
  // Cut the text at several places; every prefix must throw, not crash.
  for (const double frac : {0.2, 0.5, 0.8, 0.95}) {
    const auto cut = static_cast<std::size_t>(full.size() * frac);
    EXPECT_THROW(rtl::from_verilog(full.substr(0, cut)),
                 rtl::VerilogParseError)
        << "at fraction " << frac;
  }
}

TEST(Parser, WhitespaceInsensitive) {
  const Graph g = rtl::make_counter(6);
  std::string v = rtl::to_verilog(g);
  // Double every space and add blank lines; parse must be unchanged.
  std::string spaced;
  for (char c : v) {
    spaced += c;
    if (c == ' ') spaced += ' ';
    if (c == '\n') spaced += '\n';
  }
  EXPECT_EQ(g, rtl::from_verilog(spaced));
}

// --- nn numerical edge cases -------------------------------------------------

TEST(TensorEdge, BceWithExtremeLogitsIsFinite) {
  nn::Matrix targets(1, 2);
  targets.at(0, 0) = 1.0f;
  nn::Matrix logits_val(1, 2);
  logits_val.at(0, 0) = -80.0f;  // would overflow exp() naively
  logits_val.at(0, 1) = 80.0f;
  nn::Tensor logits(logits_val, true);
  nn::Tensor loss = nn::bce_with_logits(logits, targets);
  EXPECT_TRUE(std::isfinite(loss.value()[0]));
  logits.zero_grad();
  loss.backward();
  for (float gradient : logits.grad().data()) {
    EXPECT_TRUE(std::isfinite(gradient));
  }
}

TEST(TensorEdge, EmptyGroupAggregationIsZero) {
  nn::Tensor x(nn::Matrix(3, 2, 1.0f));
  const nn::Tensor agg = nn::aggregate_rows(x, {{}, {}, {}}, 3);
  for (float v : agg.value().data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorEdge, ScalarChainsDeepGraph) {
  // A 200-op chain must backprop without stack overflow (iterative topo).
  nn::Tensor x(nn::Matrix(1, 1, 1.001f), true);
  nn::Tensor y = x;
  for (int i = 0; i < 200; ++i) y = nn::scale(y, 1.001f);
  nn::Tensor loss = nn::mean_all(y);
  x.zero_grad();
  loss.backward();
  EXPECT_TRUE(std::isfinite(x.grad()[0]));
  EXPECT_GT(x.grad()[0], 1.0f);
}

TEST(TensorEdge, AdamHandlesZeroGradients) {
  nn::Tensor w(nn::Matrix(2, 2, 1.0f), true);
  nn::Adam opt({w});
  opt.zero_grad();
  opt.step();  // no backward performed; must not produce NaN
  for (float v : w.value().data()) EXPECT_TRUE(std::isfinite(v));
}

// --- graph IR boundaries ------------------------------------------------------

TEST(GraphEdge, WidthBoundsEnforced) {
  Graph g("t");
  EXPECT_THROW(g.add_node(NodeType::kAdd, 0), std::invalid_argument);
  EXPECT_THROW(g.add_node(NodeType::kAdd, 1 << 17), std::invalid_argument);
}

TEST(GraphEdge, SelfEdgeOnRegisterIsLegalCycle) {
  // reg feeding itself through a mux is a common "hold" idiom.
  Builder b("hold");
  const auto en = b.input(1);
  const auto d = b.input(8);
  const auto r = b.reg(8);
  b.drive_reg(r, b.mux(en, d, r));
  b.output(r);
  const Graph g = b.take();
  EXPECT_TRUE(graph::is_valid(g));
  EXPECT_FALSE(graph::has_combinational_loop(g));
}

TEST(GraphEdge, EmptyGraphIsTriviallyConsistent) {
  Graph g("empty");
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_FALSE(graph::has_combinational_loop(g));
  EXPECT_EQ(graph::comb_topo_order(g)->size(), 0u);
}

TEST(GraphEdge, MultiSlotSameParentAllowedAcrossSlots) {
  // add(x, x) is legal RTL; the graph must hold the parent in two slots.
  Builder b("dbl");
  const auto x = b.input(4);
  const auto s = b.binary(NodeType::kAdd, 4, x, x);
  b.output(s);
  const Graph g = b.take();
  EXPECT_EQ(g.fanin(s, 0), g.fanin(s, 1));
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(graph::is_valid(g));
  // Verilog round-trips the duplicated operand.
  EXPECT_EQ(g, rtl::from_verilog(rtl::to_verilog(g)));
}

// --- pipeline component boundaries -------------------------------------------

TEST(PipelineEdge, RepairOnAllRegisterAttrsSucceeds) {
  // Pathological conditioning: only registers + one in/out. Registers can
  // take any parent (no comb loops possible through them).
  graph::NodeAttrs attrs;
  attrs.types.push_back(NodeType::kInput);
  attrs.widths.push_back(4);
  for (int i = 0; i < 10; ++i) {
    attrs.types.push_back(NodeType::kReg);
    attrs.widths.push_back(4);
  }
  attrs.types.push_back(NodeType::kOutput);
  attrs.widths.push_back(4);
  util::Rng rng(3);
  nn::Matrix probs(attrs.size(), attrs.size());
  for (auto& v : probs.data()) v = static_cast<float>(rng.uniform());
  const Graph g = core::repair_to_valid(
      attrs, graph::AdjacencyMatrix(attrs.size()), probs, rng);
  EXPECT_TRUE(graph::is_valid(g));
}

TEST(PipelineEdge, RepairOnAllCombinationalFailsGracefully) {
  // No registers/sources at all except one input: a deep all-comb attr set
  // is still repairable (everything chains from the input), but an
  // attr set with zero legal parents must throw, not hang.
  graph::NodeAttrs attrs;
  for (int i = 0; i < 6; ++i) {
    attrs.types.push_back(NodeType::kNot);
    attrs.widths.push_back(1);
  }
  attrs.types.push_back(NodeType::kOutput);
  attrs.widths.push_back(1);
  util::Rng rng(4);
  nn::Matrix probs(attrs.size(), attrs.size());
  for (auto& v : probs.data()) v = static_cast<float>(rng.uniform());
  // First node has no possible parent (everything else would loop back or
  // is the output) — but wait: a chain not0 <- not1 <- ... is legal as
  // long as it's acyclic, yet the *first processed* node can pick a later
  // not-node without creating a loop (no edges exist yet). The repair
  // must therefore succeed or throw std::runtime_error — never hang or
  // return an invalid graph.
  try {
    const Graph g = core::repair_to_valid(
        attrs, graph::AdjacencyMatrix(attrs.size()), probs, rng);
    EXPECT_TRUE(graph::is_valid(g));
  } catch (const std::runtime_error&) {
    SUCCEED();
  }
}

TEST(PipelineEdge, SynthesisOfMinimalDesign) {
  Builder b("min");
  b.output(b.input(1));
  const auto stats = synth::synthesize_stats(b.take());
  EXPECT_EQ(stats.seq_cells, 0u);
  EXPECT_EQ(stats.area, 0.0);
}

TEST(PipelineEdge, AttrSamplerRejectsTinyRequests) {
  core::AttrSampler sampler;
  sampler.fit({rtl::make_counter(4)});
  util::Rng rng(5);
  EXPECT_THROW((void)sampler.sample(2, rng), std::invalid_argument);
}

}  // namespace
}  // namespace syn
