// Unit tests for the DCG IR, constraint checking and graph algorithms.
#include <gtest/gtest.h>

#include "graph/adjacency.hpp"
#include "graph/algorithms.hpp"
#include "graph/dcg.hpp"
#include "graph/validity.hpp"
#include "rtl/builder.hpp"

namespace syn::graph {
namespace {

using rtl::Builder;

TEST(NodeType, ArityMatchesPaperConstraintC1) {
  EXPECT_EQ(arity(NodeType::kInput), 0);
  EXPECT_EQ(arity(NodeType::kConst), 0);
  EXPECT_EQ(arity(NodeType::kReg), 1);
  EXPECT_EQ(arity(NodeType::kNot), 1);
  EXPECT_EQ(arity(NodeType::kAdd), 2);
  EXPECT_EQ(arity(NodeType::kMux), 3);
  EXPECT_EQ(arity(NodeType::kConcat), 2);
}

TEST(NodeType, NamesRoundTrip) {
  for (int i = 0; i < kNumNodeTypes; ++i) {
    const auto t = static_cast<NodeType>(i);
    NodeType parsed{};
    ASSERT_TRUE(parse_type_name(type_name(t), parsed));
    EXPECT_EQ(parsed, t);
  }
  NodeType t{};
  EXPECT_FALSE(parse_type_name("bogus", t));
}

TEST(Graph, EdgeBookkeeping) {
  Graph g("t");
  const NodeId a = g.add_node(NodeType::kInput, 4);
  const NodeId b = g.add_node(NodeType::kInput, 4);
  const NodeId s = g.add_node(NodeType::kAdd, 4);
  g.set_fanin(s, 0, a);
  g.set_fanin(s, 1, b);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(a, s));
  EXPECT_TRUE(g.has_edge(b, s));
  EXPECT_EQ(g.fanouts(a).size(), 1u);
  // Replacing a slot keeps counts consistent.
  g.set_fanin(s, 0, b);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FALSE(g.has_edge(a, s));
  EXPECT_EQ(g.fanouts(a).size(), 0u);
  EXPECT_EQ(g.fanouts(b).size(), 2u);
  g.clear_fanin(s, 0);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, SingleBitResultTypesForceWidthOne) {
  Graph g("t");
  const NodeId e = g.add_node(NodeType::kEq, 16);
  EXPECT_EQ(g.width(e), 1);
}

TEST(Graph, RegisterBitsSumsWidths) {
  Graph g("t");
  g.add_node(NodeType::kReg, 8);
  g.add_node(NodeType::kReg, 3);
  g.add_node(NodeType::kAdd, 8);
  EXPECT_EQ(g.register_bits(), 11u);
}

TEST(CombLoop, PureCombCycleDetected) {
  Graph g("t");
  const NodeId a = g.add_node(NodeType::kNot, 1);
  const NodeId b = g.add_node(NodeType::kNot, 1);
  g.set_fanin(a, 0, b);
  g.set_fanin(b, 0, a);
  EXPECT_TRUE(has_combinational_loop(g));
  EXPECT_FALSE(comb_topo_order(g).has_value());
}

TEST(CombLoop, CycleThroughRegisterIsLegal) {
  Graph g("t");
  const NodeId r = g.add_node(NodeType::kReg, 1);
  const NodeId n = g.add_node(NodeType::kNot, 1);
  g.set_fanin(n, 0, r);
  g.set_fanin(r, 0, n);
  EXPECT_FALSE(has_combinational_loop(g));
  EXPECT_TRUE(comb_topo_order(g).has_value());
}

TEST(CombLoop, EdgePredictionMatchesPostAdditionCheck) {
  Graph g("t");
  const NodeId a = g.add_node(NodeType::kAnd, 1);
  const NodeId b = g.add_node(NodeType::kOr, 1);
  const NodeId c = g.add_node(NodeType::kXor, 1);
  g.set_fanin(b, 0, a);
  g.set_fanin(c, 0, b);
  // c -> a would close a 3-node combinational loop.
  EXPECT_TRUE(edge_creates_comb_loop(g, c, a));
  // a -> c is a forward edge, no loop.
  EXPECT_FALSE(edge_creates_comb_loop(g, a, c));
  // Self-loop on a combinational node is a loop.
  EXPECT_TRUE(edge_creates_comb_loop(g, a, a));
}

TEST(CombLoop, EdgeIntoRegisterNeverCombLoop) {
  Graph g("t");
  const NodeId r = g.add_node(NodeType::kReg, 1);
  const NodeId n = g.add_node(NodeType::kNot, 1);
  g.set_fanin(n, 0, r);
  EXPECT_FALSE(edge_creates_comb_loop(g, n, r));
}

TEST(Scc, RegisterLoopFormsOneComponent) {
  Builder b("t");
  const auto r = b.reg(4);
  const auto inc = b.add(r, b.constant(4, 1));
  b.drive_reg(r, inc);
  b.output(r);
  const Graph g = b.take();
  const auto comp = strongly_connected_components(g);
  EXPECT_EQ(comp[r], comp[inc]);
}

TEST(DrivingCone, StopsAtBoundaries) {
  Builder b("t");
  const auto in = b.input(4);
  const auto r_other = b.reg(4);
  b.drive_reg(r_other, in);
  const auto sum = b.add(in, r_other);
  const auto r = b.reg(4);
  b.drive_reg(r, sum);
  b.output(r);
  const Graph g = b.take();
  const auto cone = driving_cone(g, r);
  // Cone = {r, sum, in, r_other}; must NOT include r_other's fan-in (in is
  // already a boundary, but the traversal must not pass through r_other).
  EXPECT_EQ(cone.size(), 4u);
}

TEST(Observability, DeadBranchInvisible) {
  Builder b("t");
  const auto in = b.input(4);
  const auto live = b.not_(in);
  const auto dead = b.add(in, in);
  b.output(live);
  const Graph g = b.take();
  const auto mask = observable_mask(g);
  EXPECT_TRUE(mask[live]);
  EXPECT_TRUE(mask[in]);
  EXPECT_FALSE(mask[dead]);
}

TEST(Validity, CompleteValidGraphPasses) {
  Builder b("t");
  const auto r = b.reg(4);
  b.drive_reg(r, b.add(r, b.constant(4, 1)));
  b.output(r);
  const Graph g = b.take();
  EXPECT_TRUE(is_valid(g));
}

TEST(Validity, UnconnectedFaninReported) {
  Graph g("t");
  g.add_node(NodeType::kNot, 1);
  g.add_node(NodeType::kOutput, 1);
  const auto report = validate(g);
  EXPECT_FALSE(report.ok());
}

TEST(Validity, OutputWithFanoutRejected) {
  Graph g("t");
  const NodeId in = g.add_node(NodeType::kInput, 1);
  const NodeId out = g.add_node(NodeType::kOutput, 1);
  const NodeId n = g.add_node(NodeType::kNot, 1);
  g.set_fanin(out, 0, in);
  g.set_fanin(n, 0, out);
  EXPECT_FALSE(validate(g).ok());
}

TEST(Adjacency, RoundTripThroughMatrix) {
  Builder b("t");
  const auto r = b.reg(4);
  const auto sum = b.add(r, b.constant(4, 1));
  b.drive_reg(r, sum);
  b.output(r);
  const Graph g = b.take();
  const auto adj = to_adjacency(g);
  EXPECT_EQ(adj.num_edges(), g.num_edges());
  const Graph g2 = graph_from_adjacency(attrs_of(g), adj, "copy");
  // Same edge set (slot order may differ but this graph has no multi-slot
  // same-parent patterns).
  EXPECT_EQ(to_adjacency(g2), adj);
}

TEST(Adjacency, SurplusParentsDropped) {
  NodeAttrs attrs;
  attrs.types = {NodeType::kInput, NodeType::kInput, NodeType::kInput,
                 NodeType::kNot};
  attrs.widths = {1, 1, 1, 1};
  AdjacencyMatrix adj(4);
  adj.set(0, 3, true);
  adj.set(1, 3, true);
  adj.set(2, 3, true);
  const Graph g = graph_from_adjacency(attrs, adj, "t");
  EXPECT_EQ(g.fanins(3).size(), 1u);
  EXPECT_EQ(g.fanin(3, 0), 0u);  // lowest id wins
}

}  // namespace
}  // namespace syn::graph
