// Property-based suites: invariants checked over parameter sweeps
// (corpus designs, sizes, densities, schedules, seeds).
#include <gtest/gtest.h>

#include <tuple>

#include "core/postprocess.hpp"
#include "core/generator.hpp"
#include "diffusion/schedule.hpp"
#include "graph/algorithms.hpp"
#include "graph/validity.hpp"
#include "mcts/discriminator.hpp"
#include "rtl/generators.hpp"
#include "rtl/verilog.hpp"
#include "stats/metrics.hpp"
#include "synth/synthesizer.hpp"

namespace syn {
namespace {

using graph::Graph;
using graph::NodeAttrs;
using graph::NodeId;

// ---------------------------------------------------------------------------
// Every corpus design, as a property sweep.
// ---------------------------------------------------------------------------

class CorpusDesignProperty : public ::testing::TestWithParam<int> {
 protected:
  Graph design() const {
    auto corpus = rtl::make_corpus({.seed = 1});
    return std::move(corpus[static_cast<std::size_t>(GetParam())].graph);
  }
};

TEST_P(CorpusDesignProperty, SatisfiesConstraintsC) {
  const Graph g = design();
  const auto report = graph::validate(g);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_P(CorpusDesignProperty, VerilogRoundTripExact) {
  const Graph g = design();
  EXPECT_EQ(g, rtl::from_verilog(rtl::to_verilog(g)));
}

TEST_P(CorpusDesignProperty, CombTopoOrderSchedulesEveryNode) {
  const Graph g = design();
  const auto order = graph::comb_topo_order(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->size(), g.num_nodes());
}

TEST_P(CorpusDesignProperty, ScprWithinRealisticBand) {
  const auto stats = synth::synthesize_stats(design());
  EXPECT_GE(stats.scpr(), 0.7);
  EXPECT_LE(stats.scpr(), 1.0);
}

TEST_P(CorpusDesignProperty, ObservabilityMatchesRegisterSurvival) {
  // Registers that survive synthesis can be at most the observable ones
  // (constant-folding can remove more, never fewer).
  const Graph g = design();
  const auto mask = graph::observable_mask(g);
  std::size_t observable_bits = 0;
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    if (graph::is_sequential(g.type(i)) && mask[i]) {
      observable_bits += static_cast<std::size_t>(g.width(i));
    }
  }
  EXPECT_LE(synth::synthesize_stats(g).seq_cells, observable_bits);
}

INSTANTIATE_TEST_SUITE_P(All22, CorpusDesignProperty, ::testing::Range(0, 22));

// ---------------------------------------------------------------------------
// Phase 2 repair over a (size, density) grid.
// ---------------------------------------------------------------------------

class RepairProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(RepairProperty, AlwaysProducesValidGraph) {
  const auto [size, density] = GetParam();
  core::AttrSampler sampler;
  sampler.fit(rtl::corpus_graphs({.seed = 2}));
  util::Rng rng(static_cast<std::uint64_t>(size * 1000) +
                static_cast<std::uint64_t>(density * 100));
  const NodeAttrs attrs = sampler.sample(static_cast<std::size_t>(size), rng);
  graph::AdjacencyMatrix gini(attrs.size());
  nn::Matrix probs(attrs.size(), attrs.size());
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    for (std::size_t j = 0; j < attrs.size(); ++j) {
      if (i != j) gini.set(i, j, rng.bernoulli(density));
      probs.at(i, j) = static_cast<float>(rng.uniform());
    }
  }
  const Graph g = core::repair_to_valid(attrs, gini, probs, rng);
  const auto report = graph::validate(g);
  EXPECT_TRUE(report.ok()) << "n=" << size << " d=" << density << "\n"
                           << report.to_string();
  // Repair preserves the attribute conditioning verbatim.
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    EXPECT_EQ(g.type(static_cast<NodeId>(i)), attrs.types[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizeDensityGrid, RepairProperty,
    ::testing::Combine(::testing::Values(8, 20, 50, 90),
                       ::testing::Values(0.0, 0.02, 0.15, 0.5, 0.95)));

// ---------------------------------------------------------------------------
// Schedule posterior over a (steps, marginal) grid.
// ---------------------------------------------------------------------------

class ScheduleProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ScheduleProperty, PosteriorMonotoneInPrediction) {
  const auto [steps, marginal] = GetParam();
  const diffusion::Schedule s(steps, marginal);
  for (int t = 1; t <= steps; ++t) {
    for (const bool at : {false, true}) {
      double prev = -1.0;
      for (double p = 0.0; p <= 1.0; p += 0.25) {
        const double q = s.posterior(t, at, p);
        EXPECT_GE(q, prev - 1e-12) << "t=" << t << " at=" << at;
        prev = q;
      }
    }
  }
}

TEST_P(ScheduleProperty, ForwardMarginalConvergesToNoise) {
  const auto [steps, marginal] = GetParam();
  const diffusion::Schedule s(steps, marginal);
  EXPECT_NEAR(s.q_t_given_0(steps, true), marginal, 0.12);
  EXPECT_NEAR(s.q_t_given_0(steps, false), marginal, 0.12);
}

INSTANTIATE_TEST_SUITE_P(
    StepsMarginalGrid, ScheduleProperty,
    ::testing::Combine(::testing::Values(1, 3, 9, 20),
                       ::testing::Values(0.01, 0.1, 0.3)));

// ---------------------------------------------------------------------------
// Swap-action invariants across random circuits.
// ---------------------------------------------------------------------------

class SwapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwapProperty, EdgeAndDegreeInvariantsHoldUnderSwapSequences) {
  util::Rng rng(GetParam());
  core::AttrSampler sampler;
  sampler.fit(rtl::corpus_graphs({.seed = 3}));
  const NodeAttrs attrs = sampler.sample(30, rng);
  graph::AdjacencyMatrix gini(attrs.size());
  nn::Matrix probs(attrs.size(), attrs.size());
  for (auto& v : probs.data()) v = static_cast<float>(rng.uniform());
  Graph g = core::repair_to_valid(attrs, gini, probs, rng);

  const auto edges = g.num_edges();
  const auto in_degrees = [&] {
    std::vector<std::size_t> d;
    for (NodeId i = 0; i < g.num_nodes(); ++i) d.push_back(g.fanins(i).size());
    return d;
  }();
  for (int k = 0; k < 60; ++k) {
    mcts::SwapAction a;
    a.child_a = static_cast<NodeId>(rng.uniform_int(g.num_nodes()));
    a.child_b = static_cast<NodeId>(rng.uniform_int(g.num_nodes()));
    if (g.fanins(a.child_a).empty() || g.fanins(a.child_b).empty()) continue;
    a.slot_a = static_cast<int>(rng.uniform_int(g.fanins(a.child_a).size()));
    a.slot_b = static_cast<int>(rng.uniform_int(g.fanins(a.child_b).size()));
    mcts::apply_swap(g, a);
  }
  EXPECT_EQ(g.num_edges(), edges);
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(g.fanins(i).size(), in_degrees[i]);
  }
  EXPECT_FALSE(graph::has_combinational_loop(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwapProperty,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

// ---------------------------------------------------------------------------
// Structural metrics are permutation-insensitive where they should be.
// ---------------------------------------------------------------------------

class MetricProperty : public ::testing::TestWithParam<int> {};

TEST_P(MetricProperty, HomophilyBetweenZeroAndOne) {
  auto corpus = rtl::make_corpus({.seed = 4});
  const Graph& g = corpus[static_cast<std::size_t>(GetParam())].graph;
  for (const bool two_hop : {false, true}) {
    const double h = stats::homophily(g, two_hop);
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 1.0);
  }
}

TEST_P(MetricProperty, ClusteringCoefficientsInUnitInterval) {
  auto corpus = rtl::make_corpus({.seed = 4});
  const Graph& g = corpus[static_cast<std::size_t>(GetParam())].graph;
  for (double c : stats::clustering_samples(g)) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(SomeDesigns, MetricProperty,
                         ::testing::Values(0, 5, 9, 14, 20));

// ---------------------------------------------------------------------------
// Hybrid reward sanity.
// ---------------------------------------------------------------------------

TEST(HybridReward, RequiresFittedDiscriminator) {
  mcts::PcsDiscriminator disc(3);
  EXPECT_THROW((void)mcts::hybrid_reward(disc), std::logic_error);
}

TEST(HybridReward, ObservabilityFractionExactOnKnownGraph) {
  // One observable register (drives output), one dead register.
  Graph g("t");
  const NodeId in = g.add_node(graph::NodeType::kInput, 4);
  const NodeId live = g.add_node(graph::NodeType::kReg, 4);
  const NodeId dead = g.add_node(graph::NodeType::kReg, 4);
  const NodeId out = g.add_node(graph::NodeType::kOutput, 4);
  g.set_fanin(live, 0, in);
  g.set_fanin(dead, 0, in);
  g.set_fanin(out, 0, live);
  EXPECT_DOUBLE_EQ(mcts::observable_register_fraction(g), 0.5);
}

}  // namespace
}  // namespace syn
