// Tests for the discrete diffusion framework: schedule algebra, posterior
// consistency, denoiser shapes/asymmetry, and end-to-end overfitting on a
// tiny corpus (the model must learn to reproduce a structure it has seen).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "diffusion/model.hpp"
#include "diffusion/schedule.hpp"
#include "graph/adjacency.hpp"
#include "rtl/generators.hpp"
#include "util/thread_pool.hpp"

namespace syn::diffusion {
namespace {

TEST(Schedule, AlphaBarMonotoneFromOneToNoise) {
  const Schedule s(9, 0.05);
  EXPECT_DOUBLE_EQ(s.alpha_bar(0), 1.0);
  for (int t = 1; t <= 9; ++t) {
    EXPECT_LT(s.alpha_bar(t), s.alpha_bar(t - 1));
    EXPECT_GT(s.alpha(t), 0.0);
    EXPECT_LE(s.alpha(t), 1.0);
  }
  EXPECT_LT(s.alpha_bar(9), 0.05);  // nearly fully corrupted at T
}

TEST(Schedule, ForwardMarginalInterpolates) {
  const Schedule s(9, 0.1);
  // At t=0+ the marginal is near the clean bit, at t=T near the noise.
  EXPECT_NEAR(s.q_t_given_0(1, true), 1.0, 0.15);
  EXPECT_NEAR(s.q_t_given_0(9, true), 0.1, 0.1);
  EXPECT_NEAR(s.q_t_given_0(9, false), 0.1, 0.1);
}

TEST(Schedule, PosteriorRespectsConfidentPredictions) {
  const Schedule s(9, 0.05);
  for (int t = 2; t <= 9; ++t) {
    // Confident "edge" prediction pulls the posterior up, confident
    // "no edge" pulls it down, for either observed state.
    for (const bool at : {false, true}) {
      EXPECT_GT(s.posterior(t, at, 1.0), s.posterior(t, at, 0.0))
          << "t=" << t << " at=" << at;
    }
  }
}

TEST(Schedule, PosteriorAtFinalStepRecoversX0) {
  const Schedule s(9, 0.05);
  // t=1: A_{t-1} = A_0, so the posterior must track p0_hat closely.
  EXPECT_GT(s.posterior(1, true, 0.99), 0.9);
  EXPECT_LT(s.posterior(1, false, 0.01), 0.1);
}

TEST(Schedule, PosteriorIsValidProbability) {
  const Schedule s(9, 0.2);
  for (int t = 1; t <= 9; ++t) {
    for (double p : {0.0, 0.3, 0.7, 1.0}) {
      for (const bool at : {false, true}) {
        const double q = s.posterior(t, at, p);
        EXPECT_GE(q, 0.0);
        EXPECT_LE(q, 1.0);
      }
    }
  }
}

TEST(Schedule, RejectsBadParameters) {
  EXPECT_THROW(Schedule(0, 0.1), std::invalid_argument);
  EXPECT_THROW(Schedule(5, 0.0), std::invalid_argument);
  EXPECT_THROW(Schedule(5, 1.0), std::invalid_argument);
}

TEST(Denoiser, ShapesAndDeterminism) {
  util::Rng rng(3);
  Denoiser den({.mpnn_layers = 2, .hidden = 16, .time_dim = 8}, rng);
  const auto g = rtl::make_counter(4);
  const auto attrs = graph::attrs_of(g);
  const auto adj = graph::to_adjacency(g);
  const auto features = Denoiser::node_features(attrs);
  const auto parents = Denoiser::parent_lists(adj);
  const auto h1 = den.encode(features, parents, 3);
  const auto h2 = den.encode(features, parents, 3);
  EXPECT_EQ(h1.rows(), g.num_nodes());
  EXPECT_EQ(h1.cols(), 16u);
  EXPECT_EQ(h1.value().data(), h2.value().data());

  const std::vector<Pair> pairs{{0, 1}, {1, 0}, {2, 3}};
  const auto logits = den.decode(h1, pairs, {1, 0, 1}, 3);
  EXPECT_EQ(logits.rows(), 3u);
  EXPECT_EQ(logits.cols(), 1u);
}

TEST(Denoiser, AsymmetricDecoderDistinguishesDirection) {
  util::Rng rng(4);
  Denoiser den({.mpnn_layers = 2, .hidden = 16, .time_dim = 8}, rng);
  const auto g = rtl::make_fifo_ctrl(3);
  const auto h = den.encode(Denoiser::node_features(graph::attrs_of(g)),
                            Denoiser::parent_lists(graph::to_adjacency(g)), 2);
  // Score (i, j) and (j, i) for several pairs; the translated-embedding
  // decoder must not be forced to produce equal values.
  double diff = 0.0;
  const std::vector<Pair> fwd{{0, 5}, {1, 6}, {2, 7}};
  const std::vector<Pair> rev{{5, 0}, {6, 1}, {7, 2}};
  const auto lf = den.decode(h, fwd, {0, 0, 0}, 2);
  const auto lr = den.decode(h, rev, {0, 0, 0}, 2);
  for (std::size_t k = 0; k < fwd.size(); ++k) {
    diff += std::abs(lf.value()[k] - lr.value()[k]);
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(Denoiser, SymmetricAblationIsDirectionBlind) {
  util::Rng rng(4);
  Denoiser den(
      {.mpnn_layers = 2, .hidden = 16, .time_dim = 8, .symmetric_decoder = true},
      rng);
  // With identical node embeddings H_i == H_j the symmetric decoder gives
  // identical scores both ways; check via duplicate-feature nodes.
  nn::Matrix features(2, Denoiser::feature_dim());
  features.at(0, 0) = 1.0f;
  features.at(1, 0) = 1.0f;
  const auto h = den.encode(features, {{}, {}}, 1);
  const auto l1 = den.decode(h, {{0, 1}}, {0}, 1);
  const auto l2 = den.decode(h, {{1, 0}}, {0}, 1);
  EXPECT_FLOAT_EQ(l1.value()[0], l2.value()[0]);
}

TEST(Denoiser, PredictBatchBitwiseEqualsScalarPath) {
  util::Rng rng(6);
  Denoiser den({.mpnn_layers = 3, .hidden = 16, .time_dim = 8}, rng);
  // Mixed-size graphs: the packed forward must reproduce each graph's
  // scalar logits row-for-row despite different node counts per block.
  const std::vector<graph::Graph> graphs{
      rtl::make_counter(4), rtl::make_fifo_ctrl(3), rtl::make_counter(6)};

  struct PerGraph {
    nn::Matrix features;
    std::vector<std::vector<std::size_t>> parents;
    std::vector<Pair> pairs;
    std::vector<std::uint8_t> state;
  };
  std::vector<PerGraph> inputs;
  std::vector<GraphStepInput> batch;
  for (const auto& g : graphs) {
    PerGraph item;
    const auto adj = graph::to_adjacency(g);
    item.features = Denoiser::node_features(graph::attrs_of(g));
    item.parents = Denoiser::parent_lists(adj);
    for (std::uint32_t i = 0; i < g.num_nodes(); ++i) {
      for (std::uint32_t j = 0; j < g.num_nodes(); ++j) {
        if (i != j) {
          item.pairs.push_back({i, j});
          item.state.push_back(adj.at(i, j) ? 1 : 0);
        }
      }
    }
    inputs.push_back(std::move(item));
  }
  for (const auto& item : inputs) {
    batch.push_back({&item.features, &item.parents, &item.pairs, &item.state});
  }

  for (const int t : {1, 3}) {
    const auto batched = den.predict_batch(batch, t);
    ASSERT_EQ(batched.size(), graphs.size());
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      const auto h = den.encode(inputs[k].features, inputs[k].parents, t);
      const auto scalar =
          den.decode(h, inputs[k].pairs, inputs[k].state, t);
      ASSERT_EQ(batched[k].rows(), inputs[k].pairs.size());
      for (std::size_t p = 0; p < inputs[k].pairs.size(); ++p) {
        // Bitwise equality: EXPECT_EQ on floats, not EXPECT_NEAR.
        EXPECT_EQ(batched[k].at(p, 0), scalar.value()[p])
            << "graph " << k << " pair " << p << " t=" << t;
      }
    }
  }
}

TEST(DiffusionModel, SampleBatchBitIdenticalToSequentialScalar) {
  DiffusionConfig cfg;
  cfg.steps = 4;
  cfg.denoiser = {.mpnn_layers = 2, .hidden = 12, .time_dim = 8};
  cfg.epochs = 5;
  cfg.seed = 21;
  DiffusionModel model(cfg);
  model.train({rtl::make_counter(4), rtl::make_fifo_ctrl(2)});

  // Attribute sets of different sizes, cycled across the chains.
  const std::vector<graph::NodeAttrs> attr_pool{
      graph::attrs_of(rtl::make_counter(4)),
      graph::attrs_of(rtl::make_fifo_ctrl(2)),
      graph::attrs_of(rtl::make_counter(6))};

  for (const std::size_t chains : {1UL, 4UL, 9UL}) {
    std::vector<graph::NodeAttrs> attrs;
    for (std::size_t c = 0; c < chains; ++c) {
      attrs.push_back(attr_pool[c % attr_pool.size()]);
    }
    const auto seeds = util::split_streams(777, chains);

    std::vector<util::Rng> rngs;
    for (std::size_t c = 0; c < chains; ++c) rngs.emplace_back(seeds[c]);
    const auto batched = model.sample_batch(attrs, rngs);
    ASSERT_EQ(batched.size(), chains);

    for (std::size_t c = 0; c < chains; ++c) {
      util::Rng rng(seeds[c]);  // the chain's own stream, replayed
      const auto scalar = model.sample(attrs[c], rng);
      EXPECT_EQ(batched[c].adjacency, scalar.adjacency)
          << "K=" << chains << " chain " << c;
      ASSERT_EQ(batched[c].edge_prob.data().size(),
                scalar.edge_prob.data().size());
      for (std::size_t i = 0; i < scalar.edge_prob.data().size(); ++i) {
        EXPECT_EQ(batched[c].edge_prob.data()[i], scalar.edge_prob.data()[i])
            << "K=" << chains << " chain " << c << " entry " << i;
      }
    }
  }
}

TEST(DiffusionModel, SampleBatchRejectsMismatchedSpans) {
  DiffusionConfig cfg;
  cfg.steps = 3;
  cfg.denoiser = {.mpnn_layers = 2, .hidden = 8, .time_dim = 8};
  cfg.epochs = 1;
  DiffusionModel model(cfg);
  model.train({rtl::make_counter(4)});
  std::vector<graph::NodeAttrs> attrs{graph::attrs_of(rtl::make_counter(4))};
  std::vector<util::Rng> rngs;  // empty: sizes differ
  EXPECT_THROW(model.sample_batch(attrs, rngs), std::invalid_argument);
}

TEST(DiffusionModel, TrainingLossDecreases) {
  DiffusionConfig cfg;
  cfg.steps = 5;
  cfg.denoiser = {.mpnn_layers = 2, .hidden = 16, .time_dim = 8};
  cfg.epochs = 25;
  cfg.seed = 9;
  DiffusionModel model(cfg);
  const std::vector<graph::Graph> corpus{rtl::make_counter(6),
                                         rtl::make_fifo_ctrl(3)};
  const auto stats = model.train(corpus);
  ASSERT_EQ(stats.epoch_loss.size(), 25u);
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 5; ++i) {
    early += stats.epoch_loss[static_cast<std::size_t>(i)];
    late += stats.epoch_loss[stats.epoch_loss.size() - 1 - static_cast<std::size_t>(i)];
  }
  EXPECT_LT(late, early);
}

TEST(DiffusionModel, SampleShapesAndDensity) {
  DiffusionConfig cfg;
  cfg.steps = 4;
  cfg.denoiser = {.mpnn_layers = 2, .hidden = 12, .time_dim = 8};
  cfg.epochs = 10;
  cfg.seed = 10;
  DiffusionModel model(cfg);
  const auto g = rtl::make_counter(8);
  model.train({g});
  util::Rng rng(1);
  const auto attrs = graph::attrs_of(g);
  const auto sample = model.sample(attrs, rng);
  EXPECT_EQ(sample.adjacency.size(), attrs.size());
  EXPECT_EQ(sample.edge_prob.rows(), attrs.size());
  // Density within an order of magnitude of the training density: the
  // marginal-preserving noise anchors it.
  const double train_density =
      static_cast<double>(g.num_edges()) /
      static_cast<double>(g.num_nodes() * g.num_nodes());
  const double sample_density =
      static_cast<double>(sample.adjacency.num_edges()) /
      static_cast<double>(attrs.size() * attrs.size());
  EXPECT_LT(sample_density, train_density * 10 + 0.05);
  // Diagonal stays empty.
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    EXPECT_FALSE(sample.adjacency.at(i, i));
  }
}

TEST(DiffusionModel, SampleBeforeTrainThrows) {
  DiffusionModel model(DiffusionConfig{});
  util::Rng rng(1);
  graph::NodeAttrs attrs;
  attrs.types = {graph::NodeType::kInput, graph::NodeType::kOutput};
  attrs.widths = {1, 1};
  EXPECT_THROW(model.sample(attrs, rng), std::logic_error);
}

}  // namespace
}  // namespace syn::diffusion
