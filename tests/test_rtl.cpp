// Tests for the Verilog bijection and the realistic design generators.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/validity.hpp"
#include "rtl/builder.hpp"
#include "rtl/generators.hpp"
#include "rtl/verilog.hpp"

namespace syn::rtl {
namespace {

using graph::Graph;
using graph::NodeType;

TEST(Verilog, EmitsModuleWithClockAndPorts) {
  Builder b("demo");
  const auto in = b.input(8);
  const auto r = b.reg(8);
  b.drive_reg(r, in);
  b.output(r);
  const std::string v = to_verilog(b.take());
  EXPECT_NE(v.find("module demo("), std::string::npos);
  EXPECT_NE(v.find("posedge clk"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, RejectsIncompleteGraph) {
  Graph g("bad");
  g.add_node(NodeType::kNot, 1);
  EXPECT_THROW(to_verilog(g), std::invalid_argument);
}

TEST(Verilog, RoundTripAllNodeTypes) {
  Builder b("full");
  const auto a = b.input(8);
  const auto c = b.input(8);
  const auto k = b.constant(8, 0x5a);
  const auto r = b.reg(8);
  const auto n_not = b.not_(a);
  const auto n_and = b.and_(a, c);
  const auto n_or = b.or_(n_not, k);
  const auto n_xor = b.xor_(n_and, n_or);
  const auto n_add = b.add(a, k);
  const auto n_sub = b.sub(c, n_add);
  const auto n_mul = b.mul(a, c);
  const auto n_eq = b.eq(n_sub, n_mul);
  const auto n_lt = b.lt(a, c);
  const auto n_mux = b.mux(n_eq, n_xor, n_add);
  const auto n_sel = b.bits(n_mux, 2, 4);
  const auto n_cat = b.concat(n_sel, n_lt, 8);
  b.drive_reg(r, n_cat);
  b.output(r);
  b.output(n_lt);
  const Graph g = b.take();
  ASSERT_TRUE(graph::is_valid(g));

  const std::string v = to_verilog(g);
  const Graph g2 = from_verilog(v);
  EXPECT_EQ(g, g2) << v;
}

TEST(Verilog, RoundTripIsIdempotentOnText) {
  const Graph g = make_counter(12, "cnt");
  const std::string v1 = to_verilog(g);
  const std::string v2 = to_verilog(from_verilog(v1));
  EXPECT_EQ(v1, v2);
}

TEST(Verilog, ParserRejectsGarbage) {
  EXPECT_THROW(from_verilog("not verilog at all"), VerilogParseError);
  EXPECT_THROW(from_verilog("module m(); bogus x; endmodule"),
               VerilogParseError);
}

// Every generator family must produce valid, cyclic-capable graphs.
struct GenCase {
  std::string label;
  Graph (*make)();
};

Graph gen_counter() { return make_counter(16); }
Graph gen_shift() { return make_shift_register(8, 6); }
Graph gen_lfsr() { return make_lfsr(16, 0xB400u); }
Graph gen_alu() { return make_alu(12); }
Graph gen_mac() { return make_mac_pipeline(10, 3); }
Graph gen_fifo() { return make_fifo_ctrl(4); }
Graph gen_fsm() { return make_fsm(3, 4); }
Graph gen_uart() { return make_uart_tx(8); }
Graph gen_rf() { return make_register_file(8, 8); }
Graph gen_arb() { return make_arbiter(5); }

class GeneratorTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorTest, ProducesValidGraph) {
  const Graph g = GetParam().make();
  const auto report = graph::validate(g);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(g.num_nodes(), 5u);
  EXPECT_GT(g.register_bits(), 0u);
}

TEST_P(GeneratorTest, SurvivesVerilogRoundTrip) {
  const Graph g = GetParam().make();
  EXPECT_EQ(g, from_verilog(to_verilog(g)));
}

TEST_P(GeneratorTest, HasSequentialFeedback) {
  // Real designs contain cycles (through registers); the generated corpus
  // must too, since cyclicity is the paper's core modelling challenge.
  const Graph g = GetParam().make();
  const auto comp = graph::strongly_connected_components(g);
  std::vector<std::size_t> size(g.num_nodes(), 0);
  for (auto c : comp) ++size[c];
  bool has_cycle = false;
  for (auto s : size) has_cycle = has_cycle || s > 1;
  EXPECT_TRUE(has_cycle) << g.name();
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, GeneratorTest,
    ::testing::Values(GenCase{"counter", gen_counter},
                      GenCase{"shift", gen_shift}, GenCase{"lfsr", gen_lfsr},
                      GenCase{"alu", gen_alu}, GenCase{"mac", gen_mac},
                      GenCase{"fifo", gen_fifo}, GenCase{"fsm", gen_fsm},
                      GenCase{"uart", gen_uart}, GenCase{"regfile", gen_rf},
                      GenCase{"arbiter", gen_arb}),
    [](const auto& info) { return info.param.label; });

TEST(Corpus, MatchesTableOneComposition) {
  const auto corpus = make_corpus({});
  ASSERT_EQ(corpus.size(), 22u);
  int itc = 0, oc = 0, cy = 0;
  bool tiny_rocket = false, core = false;
  for (const auto& d : corpus) {
    itc += d.source == "itc99-like";
    oc += d.source == "opencores-like";
    cy += d.source == "chipyard-like";
    tiny_rocket = tiny_rocket || d.graph.name() == "TinyRocket";
    core = core || d.graph.name() == "Core";
    EXPECT_TRUE(graph::is_valid(d.graph)) << d.graph.name();
  }
  EXPECT_EQ(itc, 6);
  EXPECT_EQ(oc, 8);
  EXPECT_EQ(cy, 8);
  EXPECT_TRUE(tiny_rocket);
  EXPECT_TRUE(core);
}

TEST(Corpus, DeterministicForFixedSeed) {
  const auto a = corpus_graphs({.seed = 7});
  const auto b = corpus_graphs({.seed = 7});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Corpus, ScaleGrowsDesigns) {
  const auto small = corpus_graphs({.seed = 3, .scale = 1.0});
  const auto large = corpus_graphs({.seed = 3, .scale = 2.0});
  std::size_t n_small = 0, n_large = 0;
  for (const auto& g : small) n_small += g.num_nodes();
  for (const auto& g : large) n_large += g.num_nodes();
  EXPECT_GT(n_large, n_small);
}

}  // namespace
}  // namespace syn::rtl
